//! A minimal 2-D tensor: every value in the m3 model is a matrix (a
//! sequence of embeddings `[L, D]`, a feature map `[1, 1000]`, a weight
//! `[in, out]`). Row-major `Vec<f32>` storage, no strides, no views —
//! simplicity over cleverness, per this repo's networking-guide idioms.
//!
//! # Kernel design
//!
//! The matmul kernels are register-blocked over output-column panels of
//! `JB = 64` floats: for one row of `C`, a `[f32; JB]` accumulator panel is
//! loaded once, the whole `k` loop runs against it (one broadcast of
//! `a[i,k]` FMA'd into the panel per step), and the panel is stored once.
//! The naive ikj loop instead re-loads and re-stores the `C` row on every
//! `k` step — three memory streams per FMA sweep versus one — which is
//! what made it memory-bound. The fixed-size panel is the whole trick: the
//! autovectorizer keeps it in vector registers across the `k` loop.
//! Each output element still accumulates its `k` terms in ascending
//! order from its initial value, so blocked results are bit-identical to
//! the retained scalar reference kernels (see `matmul_into_reference` and
//! the proptest suite).
//!
//! Sparsity fast path: feature maps are mostly exact zeros (empty
//! percentile buckets), so skipping `a[i,k] == 0.0` rows of `B` is a large
//! win — but `0.0 * NaN` must be `NaN`, and an unconditional skip would
//! silently swallow a poisoned weight. The skip is therefore gated on a
//! branchless finiteness scan of `B`: when `B` contains any NaN/Inf the
//! kernel runs dense and the poison propagates IEEE-correctly. When `B` is
//! finite the skipped terms are exact `±0.0` products which provably never
//! change the accumulator (it starts at `+0.0` and `x + ±0.0 == x` for all
//! `x != -0.0`; the accumulator can never become `-0.0` because round-to-
//! nearest only yields `-0.0` from `-0.0 + -0.0`), so gating the skip on
//! finiteness changes no bits.

use std::fmt;

/// Output-column panel width for the register-blocked kernels: one panel
/// of `f32` accumulators (8 AVX2 vectors' worth) held in registers across
/// the entire `k` loop.
const JB: usize = 64;

/// One row of `C += a_row * B`, register-blocked over [`JB`]-wide output
/// panels. Per element the accumulation runs in ascending `k` from the
/// row's current value — bit-identical to the naive ikj loop.
#[inline]
fn row_times_b(a_row: &[f32], b_data: &[f32], m: usize, c_row: &mut [f32], zero_skip: bool) {
    let mut jb = 0;
    while jb + JB <= m {
        let mut acc = [0.0f32; JB];
        acc.copy_from_slice(&c_row[jb..jb + JB]);
        for (k, &aik) in a_row.iter().enumerate() {
            if zero_skip && aik == 0.0 {
                continue;
            }
            let b_blk = &b_data[k * m + jb..k * m + jb + JB];
            for (c, &bv) in acc.iter_mut().zip(b_blk) {
                *c += aik * bv;
            }
        }
        c_row[jb..jb + JB].copy_from_slice(&acc);
        jb += JB;
    }
    if jb < m {
        let w = m - jb;
        let mut acc = [0.0f32; JB];
        acc[..w].copy_from_slice(&c_row[jb..]);
        for (k, &aik) in a_row.iter().enumerate() {
            if zero_skip && aik == 0.0 {
                continue;
            }
            let b_blk = &b_data[k * m + jb..k * m + m];
            for (c, &bv) in acc[..w].iter_mut().zip(b_blk) {
                *c += aik * bv;
            }
        }
        c_row[jb..].copy_from_slice(&acc[..w]);
    }
}

/// Typed construction errors (shape arithmetic is checked so overflow
/// behaves identically in debug and release, matching the hardened
/// checkpoint-load path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// `rows * cols` overflows `usize`.
    ShapeOverflow { rows: usize, cols: usize },
    /// Provided buffer length does not match `rows * cols`.
    DataLenMismatch {
        rows: usize,
        cols: usize,
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeOverflow { rows, cols } => {
                write!(f, "tensor shape {rows}x{cols} overflows usize")
            }
            TensorError::DataLenMismatch { rows, cols, len } => {
                write!(
                    f,
                    "tensor shape {rows}x{cols} expects {} values, got {len}",
                    { rows.saturating_mul(*cols) }
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    /// Checked constructor: rejects shapes whose element count overflows.
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, TensorError> {
        let n = rows
            .checked_mul(cols)
            .ok_or(TensorError::ShapeOverflow { rows, cols })?;
        Ok(Tensor {
            rows,
            cols,
            data: vec![0.0; n],
        })
    }

    pub fn zeros(rows: usize, cols: usize) -> Self {
        match Tensor::try_zeros(rows, cols) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked constructor from an existing buffer.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        let n = rows
            .checked_mul(cols)
            .ok_or(TensorError::ShapeOverflow { rows, cols })?;
        if data.len() != n {
            return Err(TensorError::DataLenMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        match Tensor::try_from_vec(rows, cols, data) {
            Ok(t) => t,
            Err(e) => panic!("shape/data mismatch: {e}"),
        }
    }

    pub fn row_vector(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// C = A * B (`[n,k] x [k,m] -> [n,m]`), accumulating into `out`.
    /// Cache-blocked; the zero-skip is gated on `B` being finite (see the
    /// module docs for why that is required for IEEE NaN propagation and
    /// why it cannot change any bits).
    pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        Tensor::matmul_into_gated(a, b, out, all_finite(&b.data));
    }

    /// Blocked kernel with the caller deciding whether the zero-skip is
    /// sound (`zero_skip` must only be true when `B` is known finite; the
    /// inference fast path hoists one finiteness scan over all weights).
    pub fn matmul_into_gated(a: &Tensor, b: &Tensor, out: &mut Tensor, zero_skip: bool) {
        assert_eq!(a.cols, b.rows, "matmul inner dims");
        assert_eq!((out.rows, out.cols), (a.rows, b.cols));
        let m = b.cols;
        for i in 0..a.rows {
            let a_row = &a.data[i * a.cols..(i + 1) * a.cols];
            let c_row = &mut out.data[i * m..(i + 1) * m];
            row_times_b(a_row, &b.data, m, c_row, zero_skip);
        }
    }

    /// Retained scalar reference kernel (pre-blocking ikj loop). The
    /// proptest suite asserts the blocked kernel matches this bit-for-bit;
    /// the hotpath bench uses it as the "before" implementation.
    pub fn matmul_into_reference(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.cols, b.rows, "matmul inner dims");
        assert_eq!((out.rows, out.cols), (a.rows, b.cols));
        let zero_skip = all_finite(&b.data);
        for i in 0..a.rows {
            let c_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for k in 0..a.cols {
                let aik = a.data[i * a.cols + k];
                if zero_skip && aik == 0.0 {
                    continue;
                }
                let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c += aik * bv;
                }
            }
        }
    }

    /// C = rows(A) * B where A is given as a slice of row buffers (each of
    /// length `b.rows`). Identical arithmetic to [`Tensor::matmul_into_gated`]
    /// on the stacked matrix, without materialising the stack — this is the
    /// batching primitive that lets `predict_batch` consume per-hop feature
    /// maps in place (no O(L·D) copy).
    pub fn matmul_rows_into_gated(
        a_rows: &[Vec<f32>],
        b: &Tensor,
        out: &mut Tensor,
        zero_skip: bool,
    ) {
        for r in a_rows {
            assert_eq!(r.len(), b.rows, "matmul inner dims");
        }
        assert_eq!((out.rows, out.cols), (a_rows.len(), b.cols));
        let m = b.cols;
        for (i, a_row) in a_rows.iter().enumerate() {
            let c_row = &mut out.data[i * m..(i + 1) * m];
            row_times_b(a_row, &b.data, m, c_row, zero_skip);
        }
    }

    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows, b.cols);
        Tensor::matmul_into(a, b, &mut out);
        out
    }

    /// Stack row vectors (each `[1, cols]`) into one `[n, cols]` matrix.
    ///
    /// This is the batching primitive: because [`Tensor::matmul_into`]
    /// computes each output row from the matching input row alone, with a
    /// fixed k-accumulation order, `matmul(stack_rows(xs), w)` is
    /// bit-for-bit identical to stacking the per-row `matmul(x, w)`
    /// results.
    pub fn stack_rows(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.rows, 1, "stack_rows expects row vectors");
            assert_eq!(r.cols, cols, "stack_rows width mismatch");
            data.extend_from_slice(&r.data);
        }
        Tensor::from_vec(rows.len(), cols, data)
    }

    /// Copy of one row as a `[1, cols]` tensor.
    pub fn row(&self, r: usize) -> Tensor {
        assert!(r < self.rows, "row out of range");
        Tensor::from_vec(
            1,
            self.cols,
            self.data[r * self.cols..(r + 1) * self.cols].to_vec(),
        )
    }

    /// Borrow one row as a slice (no copy).
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// C = A * B^T (`[n,k] x [m,k]^T -> [n,m]`), accumulating into `out`.
    pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.cols, b.cols, "matmul_nt inner dims");
        assert_eq!((out.rows, out.cols), (a.rows, b.rows));
        for i in 0..a.rows {
            let a_row = &a.data[i * a.cols..(i + 1) * a.cols];
            for j in 0..b.rows {
                let b_row = &b.data[j * b.cols..(j + 1) * b.cols];
                let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                out.data[i * b.rows + j] += dot;
            }
        }
    }

    /// C = A^T * B (`[k,n]^T x [k,m] -> [n,m]`), accumulating into `out`.
    /// The zero-skip is finite-gated exactly like [`Tensor::matmul_into`].
    pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.rows, b.rows, "matmul_tn inner dims");
        assert_eq!((out.rows, out.cols), (a.cols, b.cols));
        let zero_skip = all_finite(&b.data);
        for k in 0..a.rows {
            let a_row = &a.data[k * a.cols..(k + 1) * a.cols];
            let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
            for (i, &av) in a_row.iter().enumerate() {
                if zero_skip && av == 0.0 {
                    continue;
                }
                let c_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c += av * bv;
                }
            }
        }
    }
}

/// Branchless finiteness scan: OR-reduces the "exponent is all ones" bit of
/// every element, which the autovectorizer turns into a wide integer
/// reduction (no FP compares, no short-circuit branches).
#[inline]
pub fn all_finite(xs: &[f32]) -> bool {
    let mut acc = 0u32;
    for v in xs {
        acc |= ((v.to_bits() & 0x7f80_0000) == 0x7f80_0000) as u32;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = Tensor::matmul(&a, &b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_matmul() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        // b = [[7,9,11],[8,10,12]] so that b^T equals the b above.
        let b = Tensor::from_vec(2, 3, vec![7., 9., 11., 8., 10., 12.]);
        let mut c = Tensor::zeros(2, 2);
        Tensor::matmul_nt_into(&a, &b, &mut c);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_matmul() {
        // a^T where a is [3,2]: compare against direct matmul of transpose.
        let a = Tensor::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut c = Tensor::zeros(2, 2);
        Tensor::matmul_tn_into(&a, &b, &mut c);
        // a^T = [[1,2,3],[4,5,6]]
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn batched_matmul_rows_bit_identical() {
        // The property predict_batch relies on: stacking rows and doing one
        // matmul gives exactly the same bits as one matmul per row.
        let w = Tensor::from_vec(3, 4, (0..12).map(|i| ((i as f32) * 0.71).sin()).collect());
        let rows: Vec<Tensor> = (0..5)
            .map(|r| {
                Tensor::row_vector((0..3).map(|c| ((r * 3 + c) as f32 * 0.33).cos()).collect())
            })
            .collect();
        let stacked = Tensor::stack_rows(&rows.iter().collect::<Vec<_>>());
        let batched = Tensor::matmul(&stacked, &w);
        for (r, row) in rows.iter().enumerate() {
            let single = Tensor::matmul(row, &w);
            let got: Vec<u32> = batched.row(r).data.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = single.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        Tensor::matmul(&a, &b);
    }

    #[test]
    fn try_zeros_rejects_overflowing_shape() {
        let e = Tensor::try_zeros(usize::MAX, 2).unwrap_err();
        assert_eq!(
            e,
            TensorError::ShapeOverflow {
                rows: usize::MAX,
                cols: 2
            }
        );
        assert!(e.to_string().contains("overflows"));
    }

    #[test]
    fn try_from_vec_rejects_overflow_and_len_mismatch() {
        assert_eq!(
            Tensor::try_from_vec(usize::MAX, 4, vec![0.0]).unwrap_err(),
            TensorError::ShapeOverflow {
                rows: usize::MAX,
                cols: 4
            }
        );
        assert_eq!(
            Tensor::try_from_vec(2, 2, vec![0.0; 3]).unwrap_err(),
            TensorError::DataLenMismatch {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
        assert!(Tensor::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn nan_in_weight_propagates_through_zero_activation() {
        // 0 * NaN must be NaN: a zero activation row may not mask a
        // poisoned weight (the pre-fix kernel skipped aik == 0.0
        // unconditionally and emitted a clean-looking zero).
        let a = Tensor::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Tensor::from_vec(2, 2, vec![1.0, f32::NAN, 2.0, 3.0]);
        let c = Tensor::matmul(&a, &b);
        assert!(
            c.data.iter().any(|v| v.is_nan()),
            "NaN swallowed: {:?}",
            c.data
        );

        // Same property for the transposed kernel: A^T has a zero column.
        let bt = Tensor::from_vec(1, 2, vec![f32::NAN, 3.0]);
        let mut out = Tensor::zeros(2, 2);
        Tensor::matmul_tn_into(&a, &bt, &mut out);
        assert!(out.data.iter().any(|v| v.is_nan()));

        // Inf is equally non-skippable (0 * Inf = NaN).
        let binf = Tensor::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
        let cinf = Tensor::matmul(&a, &binf);
        assert!(
            cinf.data[0].is_nan(),
            "0*Inf must be NaN, got {}",
            cinf.data[0]
        );
    }

    #[test]
    fn finite_gated_skip_is_bit_identical_to_dense() {
        // With a finite B, skipping zero activations changes no bits.
        let a = Tensor::from_vec(2, 3, vec![0.0, -2.0, 0.0, 1.5, 0.0, -0.0]);
        let b = Tensor::from_vec(3, 2, vec![0.3, -0.7, 1.1, 0.0, -2.2, 5.0]);
        let skipped = Tensor::matmul(&a, &b);
        let mut dense = Tensor::zeros(2, 2);
        Tensor::matmul_into_gated(&a, &b, &mut dense, false);
        let sb: Vec<u32> = skipped.data.iter().map(|v| v.to_bits()).collect();
        let db: Vec<u32> = dense.data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, db);
    }

    #[test]
    fn all_finite_flags_every_poison() {
        assert!(all_finite(&[0.0, -1.5, 3.4e38]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 1.0]));
        assert!(all_finite(&[]));
    }
}
