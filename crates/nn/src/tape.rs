//! Tape-based reverse-mode automatic differentiation over a closed set of
//! ops — exactly the ops the m3 model needs (matmuls, residual adds, SiLU,
//! RMSNorm, causal softmax, concatenation, L1 loss). Each forward call
//! appends a node; `backward` walks the tape in reverse and accumulates
//! parameter gradients into caller-provided buffers.
//!
//! Allocation discipline: parameter nodes borrow their value from the
//! [`ParamStore`] (no per-sample clone of the weights), and every op output
//! is drawn from a [`TensorArena`] owned by the tape. [`Tape::reset`]
//! retires all node buffers back to the arena, so a tape reused across
//! batch members reaches zero steady-state allocation after one warmup
//! sample.

use crate::arena::TensorArena;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (no gradient).
    Input,
    /// Reference to a learnable parameter.
    Param(ParamId),
    /// [n,k] x [k,m]
    MatMul(Var, Var),
    /// [n,k] x [m,k]^T
    MatMulNT(Var, Var),
    /// Elementwise add, same shape.
    Add(Var, Var),
    /// [n,m] + bias row [1,m]
    AddBias(Var, Var),
    /// Elementwise multiply, same shape.
    Mul(Var, Var),
    /// Scalar multiply.
    Scale(Var, f32),
    Relu(Var),
    Silu(Var),
    /// Row-wise softmax over a square matrix with entries above the
    /// diagonal masked out (causal attention).
    CausalSoftmax(Var),
    /// Row-wise RMS normalization with a learnable gain row: (x, gain).
    RmsNorm(Var, Var),
    /// Horizontal concatenation of two row-compatible matrices.
    ConcatCols(Var, Var),
    /// Extract one row as a [1, m] matrix.
    SliceRow(Var, usize),
    /// Mean absolute error against a constant target: (pred, target).
    L1Loss(Var, Var),
}

struct Node {
    op: Op,
    /// `None` only for `Param` nodes, whose value lives in the store.
    value: Option<Tensor>,
}

pub(crate) const RMS_EPS: f32 = 1e-5;

/// One forward/backward tape. Reusable via [`Tape::reset`]; cheap to drop.
pub struct Tape<'p> {
    store: &'p ParamStore,
    nodes: Vec<Node>,
    arena: TensorArena,
    /// Pre-overhaul cost model: scalar reference matmul kernels, a fresh
    /// heap allocation per node, and parameter values cloned onto the
    /// tape. Numerically (bitwise) identical to the fast configuration;
    /// retained as the "before" side of the hotpath benchmark gate.
    reference_kernels: bool,
}

impl<'p> Tape<'p> {
    pub fn new(store: &'p ParamStore) -> Self {
        Tape::with_arena(store, TensorArena::new())
    }

    /// Build a tape around a warm arena (e.g. one recycled from a previous
    /// sample of the same batch).
    pub fn with_arena(store: &'p ParamStore, arena: TensorArena) -> Self {
        Tape {
            store,
            nodes: Vec::with_capacity(256),
            arena,
            reference_kernels: false,
        }
    }

    /// A tape that faithfully reproduces the pre-overhaul implementation:
    /// scalar reference kernels, per-op heap allocation, param clones.
    pub fn new_reference(store: &'p ParamStore) -> Self {
        Tape {
            reference_kernels: true,
            ..Tape::new(store)
        }
    }

    /// A fresh value buffer: from the arena normally, from the heap in
    /// reference mode (replicating the pre-overhaul per-op allocation).
    fn fresh(&mut self, rows: usize, cols: usize) -> Tensor {
        if self.reference_kernels {
            Tensor::zeros(rows, cols)
        } else {
            self.arena.take(rows, cols)
        }
    }

    /// Clear the graph, retiring every node buffer into the arena. The
    /// next forward pass over similar shapes allocates nothing.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            if let Some(t) = node.value {
                self.arena.give(t);
            }
        }
    }

    /// Tear down the tape, recovering its warm arena for the next tape.
    pub fn recycle(mut self) -> TensorArena {
        self.reset();
        self.arena
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node {
            op,
            value: Some(value),
        });
        Var(self.nodes.len() - 1)
    }

    /// Resolve a node's value (parameters resolve into the store).
    fn val(&self, v: Var) -> &Tensor {
        let node = &self.nodes[v.0];
        match (&node.op, &node.value) {
            (_, Some(t)) => t,
            (Op::Param(id), None) => self.store.get(*id),
            _ => unreachable!("non-param node without a value"),
        }
    }

    pub fn value(&self, v: Var) -> &Tensor {
        self.val(v)
    }

    // ---- graph constructors -------------------------------------------------

    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Input, t)
    }

    pub fn param(&mut self, id: ParamId) -> Var {
        // No clone: the value is read from the store on demand (reference
        // mode keeps the pre-overhaul per-use clone).
        let value = if self.reference_kernels {
            Some(self.store.get(id).clone())
        } else {
            None
        };
        self.nodes.push(Node {
            op: Op::Param(id),
            value,
        });
        Var(self.nodes.len() - 1)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = (self.val(a).rows, self.val(b).cols);
        let mut out = self.fresh(r, c);
        if self.reference_kernels {
            Tensor::matmul_into_reference(self.val(a), self.val(b), &mut out);
        } else {
            Tensor::matmul_into(self.val(a), self.val(b), &mut out);
        }
        self.push(Op::MatMul(a, b), out)
    }

    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = (self.val(a).rows, self.val(b).rows);
        let mut out = self.fresh(r, c);
        Tensor::matmul_nt_into(self.val(a), self.val(b), &mut out);
        self.push(Op::MatMulNT(a, b), out)
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = {
            let (av, bv) = (self.val(a), self.val(b));
            assert_eq!(av.shape(), bv.shape(), "add shape mismatch");
            av.shape()
        };
        let mut v = self.fresh(r, c);
        for ((o, &x), &y) in v
            .data
            .iter_mut()
            .zip(&self.val(a).data)
            .zip(&self.val(b).data)
        {
            *o = x + y;
        }
        self.push(Op::Add(a, b), v)
    }

    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (r, c) = {
            let (av, bv) = (self.val(a), self.val(bias));
            assert_eq!(bv.rows, 1, "bias must be a row vector");
            assert_eq!(av.cols, bv.cols, "bias width mismatch");
            av.shape()
        };
        let mut v = self.fresh(r, c);
        {
            let (av, bv) = (self.val(a), self.val(bias));
            for row in 0..r {
                let src = &av.data[row * c..(row + 1) * c];
                let dst = &mut v.data[row * c..(row + 1) * c];
                for ((o, &x), &b) in dst.iter_mut().zip(src).zip(&bv.data) {
                    *o = x + b;
                }
            }
        }
        self.push(Op::AddBias(a, bias), v)
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = {
            let (av, bv) = (self.val(a), self.val(b));
            assert_eq!(av.shape(), bv.shape(), "mul shape mismatch");
            av.shape()
        };
        let mut v = self.fresh(r, c);
        for ((o, &x), &y) in v
            .data
            .iter_mut()
            .zip(&self.val(a).data)
            .zip(&self.val(b).data)
        {
            *o = x * y;
        }
        self.push(Op::Mul(a, b), v)
    }

    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.fresh(rows, cols);
        for (o, &x) in v.data.iter_mut().zip(&self.val(a).data) {
            *o = x * c;
        }
        self.push(Op::Scale(a, c), v)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.fresh(rows, cols);
        for (o, &x) in v.data.iter_mut().zip(&self.val(a).data) {
            *o = x.max(0.0);
        }
        self.push(Op::Relu(a), v)
    }

    pub fn silu(&mut self, a: Var) -> Var {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.fresh(rows, cols);
        for (o, &x) in v.data.iter_mut().zip(&self.val(a).data) {
            *o = x * sigmoid(x);
        }
        self.push(Op::Silu(a), v)
    }

    pub fn causal_softmax(&mut self, a: Var) -> Var {
        let n = {
            let av = self.val(a);
            assert_eq!(av.rows, av.cols, "causal softmax expects square scores");
            av.rows
        };
        let mut v = self.fresh(n, n);
        causal_softmax_into(&self.val(a).data, n, &mut v.data);
        self.push(Op::CausalSoftmax(a), v)
    }

    pub fn rms_norm(&mut self, a: Var, gain: Var) -> Var {
        let (r, c) = {
            let (av, gv) = (self.val(a), self.val(gain));
            assert_eq!(gv.rows, 1, "rmsnorm gain must be a row");
            assert_eq!(gv.cols, av.cols, "rmsnorm gain width mismatch");
            av.shape()
        };
        let mut v = self.fresh(r, c);
        rms_norm_into(self.val(a), &self.val(gain).data, &mut v.data);
        self.push(Op::RmsNorm(a, gain), v)
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (r, ac, bc) = {
            let (av, bv) = (self.val(a), self.val(b));
            assert_eq!(av.rows, bv.rows, "concat row mismatch");
            (av.rows, av.cols, bv.cols)
        };
        let mut v = self.fresh(r, ac + bc);
        {
            let (av, bv) = (self.val(a), self.val(b));
            for row in 0..r {
                let dst = &mut v.data[row * (ac + bc)..(row + 1) * (ac + bc)];
                dst[..ac].copy_from_slice(&av.data[row * ac..(row + 1) * ac]);
                dst[ac..].copy_from_slice(&bv.data[row * bc..(row + 1) * bc]);
            }
        }
        self.push(Op::ConcatCols(a, b), v)
    }

    pub fn slice_row(&mut self, a: Var, row: usize) -> Var {
        let cols = {
            let av = self.val(a);
            assert!(row < av.rows, "row out of range");
            av.cols
        };
        let mut v = self.fresh(1, cols);
        v.data
            .copy_from_slice(&self.val(a).data[row * cols..(row + 1) * cols]);
        self.push(Op::SliceRow(a, row), v)
    }

    /// Mean absolute error; `target` must be an Input of the same shape.
    pub fn l1_loss(&mut self, pred: Var, target: Var) -> Var {
        let loss = {
            let (pv, tv) = (self.val(pred), self.val(target));
            assert_eq!(pv.shape(), tv.shape(), "loss shape mismatch");
            let n = pv.len() as f32;
            pv.data
                .iter()
                .zip(&tv.data)
                .map(|(p, t)| (p - t).abs())
                .sum::<f32>()
                / n
        };
        let mut v = self.fresh(1, 1);
        v.data[0] = loss;
        self.push(Op::L1Loss(pred, target), v)
    }

    // ---- backward -----------------------------------------------------------

    /// Reverse-mode sweep from `root` (a scalar). Parameter gradients are
    /// *accumulated* into `param_grads` (aligned with the store), enabling
    /// gradient accumulation across samples.
    pub fn backward(&self, root: Var, param_grads: &mut [Tensor]) {
        assert_eq!(param_grads.len(), self.store.len(), "grad buffer mismatch");
        assert_eq!(self.val(root).len(), 1, "backward root must be scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));

        for idx in (0..self.nodes.len()).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Input => {}
                Op::Param(pid) => {
                    let buf = &mut param_grads[pid.0];
                    for (b, &gv) in buf.data.iter_mut().zip(&g.data) {
                        *b += gv;
                    }
                }
                Op::MatMul(a, b) => {
                    // dA += G B^T ; dB += A^T G
                    let (av, bv) = (self.val(*a), self.val(*b));
                    {
                        let da = ensure(&mut grads, *a, av.rows, av.cols);
                        Tensor::matmul_nt_into(&g, bv, da);
                    }
                    {
                        let db = ensure(&mut grads, *b, bv.rows, bv.cols);
                        Tensor::matmul_tn_into(av, &g, db);
                    }
                }
                Op::MatMulNT(a, b) => {
                    // C = A B^T: dA += G B ; dB += G^T A
                    let (av, bv) = (self.val(*a), self.val(*b));
                    {
                        let da = ensure(&mut grads, *a, av.rows, av.cols);
                        Tensor::matmul_into(&g, bv, da);
                    }
                    {
                        let db = ensure(&mut grads, *b, bv.rows, bv.cols);
                        Tensor::matmul_tn_into(&g, av, db);
                    }
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::AddBias(a, bias) => {
                    accumulate(&mut grads, *a, &g);
                    let bv = self.val(*bias);
                    let db = ensure(&mut grads, *bias, 1, bv.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            db.data[c] += g.at(r, c);
                        }
                    }
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (self.val(*a), self.val(*b));
                    {
                        let da = ensure(&mut grads, *a, av.rows, av.cols);
                        for ((d, &gv), &o) in da.data.iter_mut().zip(&g.data).zip(&bv.data) {
                            *d += gv * o;
                        }
                    }
                    {
                        let db = ensure(&mut grads, *b, bv.rows, bv.cols);
                        for ((d, &gv), &o) in db.data.iter_mut().zip(&g.data).zip(&av.data) {
                            *d += gv * o;
                        }
                    }
                }
                Op::Scale(a, c) => {
                    let av = self.val(*a);
                    let da = ensure(&mut grads, *a, av.rows, av.cols);
                    for (d, &gv) in da.data.iter_mut().zip(&g.data) {
                        *d += gv * c;
                    }
                }
                Op::Relu(a) => {
                    let av = self.val(*a);
                    let da = ensure(&mut grads, *a, av.rows, av.cols);
                    for ((d, &gv), &x) in da.data.iter_mut().zip(&g.data).zip(&av.data) {
                        if x > 0.0 {
                            *d += gv;
                        }
                    }
                }
                Op::Silu(a) => {
                    let av = self.val(*a);
                    let da = ensure(&mut grads, *a, av.rows, av.cols);
                    for ((d, &gv), &x) in da.data.iter_mut().zip(&g.data).zip(&av.data) {
                        let s = sigmoid(x);
                        *d += gv * (s + x * s * (1.0 - s));
                    }
                }
                Op::CausalSoftmax(a) => {
                    let y = self.val(Var(idx));
                    let n = y.rows;
                    let av = self.val(*a);
                    let da = ensure(&mut grads, *a, av.rows, av.cols);
                    for i in 0..n {
                        let yr = &y.data[i * n..(i + 1) * n];
                        let gr = &g.data[i * n..(i + 1) * n];
                        let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                        for j in 0..=i {
                            da.data[i * n + j] += yr[j] * (gr[j] - dot);
                        }
                    }
                }
                Op::RmsNorm(a, gain) => {
                    let av = self.val(*a);
                    let gv = self.val(*gain);
                    let cols = av.cols;
                    // Gradients w.r.t. x and gain, row by row.
                    let mut dx = Tensor::zeros(av.rows, cols);
                    let mut dgain = Tensor::zeros(1, cols);
                    for r in 0..av.rows {
                        let x = &av.data[r * cols..(r + 1) * cols];
                        let gr = &g.data[r * cols..(r + 1) * cols];
                        let ms = x.iter().map(|v| v * v).sum::<f32>() / cols as f32;
                        let inv = 1.0 / (ms + RMS_EPS).sqrt();
                        // s = sum_i g_i * gain_i * x_i
                        let s: f32 = (0..cols).map(|c| gr[c] * gv.data[c] * x[c]).sum();
                        for c in 0..cols {
                            dx.data[r * cols + c] +=
                                gr[c] * gv.data[c] * inv - x[c] * inv * inv * inv * s / cols as f32;
                            dgain.data[c] += gr[c] * x[c] * inv;
                        }
                    }
                    accumulate(&mut grads, *a, &dx);
                    accumulate(&mut grads, *gain, &dgain);
                }
                Op::ConcatCols(a, b) => {
                    let (av, bv) = (self.val(*a), self.val(*b));
                    let mut da = Tensor::zeros(av.rows, av.cols);
                    let mut db = Tensor::zeros(bv.rows, bv.cols);
                    for r in 0..g.rows {
                        for c in 0..av.cols {
                            *da.at_mut(r, c) = g.at(r, c);
                        }
                        for c in 0..bv.cols {
                            *db.at_mut(r, c) = g.at(r, av.cols + c);
                        }
                    }
                    accumulate(&mut grads, *a, &da);
                    accumulate(&mut grads, *b, &db);
                }
                Op::SliceRow(a, row) => {
                    let av = self.val(*a);
                    let da = ensure(&mut grads, *a, av.rows, av.cols);
                    for c in 0..av.cols {
                        da.data[row * av.cols + c] += g.at(0, c);
                    }
                }
                Op::L1Loss(pred, target) => {
                    let (pv, tv) = (self.val(*pred), self.val(*target));
                    let n = pv.len() as f32;
                    let scale = g.data[0] / n;
                    let dp = ensure(&mut grads, *pred, pv.rows, pv.cols);
                    for ((d, &p), &t) in dp.data.iter_mut().zip(&pv.data).zip(&tv.data) {
                        *d += scale * (p - t).signum();
                    }
                }
            }
        }
    }
}

#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Row-wise causal softmax of an `[n, n]` score matrix into `out` (which
/// must be zeroed: entries above the diagonal are left untouched). Shared
/// by the tape op and the no-tape inference fast path so the two are
/// bit-identical by construction.
pub(crate) fn causal_softmax_into(scores: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..n {
        let row = &scores[i * n..(i + 1) * n];
        let max = row[..=i].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        let o = &mut out[i * n..i * n + i + 1];
        for (o, &x) in o.iter_mut().zip(&row[..=i]) {
            let e = (x - max).exp();
            *o = e;
            denom += e;
        }
        for o in o.iter_mut() {
            *o /= denom;
        }
    }
}

/// Row-wise RMS norm with a gain row, shared by the tape op and the
/// inference fast path (overwrites `out`).
pub(crate) fn rms_norm_into(a: &Tensor, gain: &[f32], out: &mut [f32]) {
    let cols = a.cols;
    for r in 0..a.rows {
        let row = &a.data[r * cols..(r + 1) * cols];
        let ms = row.iter().map(|x| x * x).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + RMS_EPS).sqrt();
        let o = &mut out[r * cols..(r + 1) * cols];
        for ((o, &x), &g) in o.iter_mut().zip(row).zip(gain) {
            *o = x * inv * g;
        }
    }
}

fn ensure(grads: &mut [Option<Tensor>], v: Var, rows: usize, cols: usize) -> &mut Tensor {
    grads[v.0].get_or_insert_with(|| Tensor::zeros(rows, cols))
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, delta: &Tensor) {
    match &mut grads[v.0] {
        Some(g) => {
            for (a, &b) in g.data.iter_mut().zip(&delta.data) {
                *a += b;
            }
        }
        slot @ None => *slot = Some(delta.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Finite-difference check of d(loss)/d(param) for a builder closure.
    fn check_param_grad<F>(store: &mut ParamStore, pid: ParamId, build: F, tol: f32)
    where
        F: Fn(&mut Tape) -> Var,
    {
        let mut grads = store.zero_grads();
        {
            let tape_store = store.clone();
            let mut tape = Tape::new(&tape_store);
            let loss = build(&mut tape);
            tape.backward(loss, &mut grads);
        }
        let eps = 1e-3f32;
        let n = store.get(pid).len();
        for i in (0..n).step_by((n / 7).max(1)) {
            let orig = store.get(pid).data[i];
            store.get_mut(pid).data[i] = orig + eps;
            let plus = {
                let s = store.clone();
                let mut t = Tape::new(&s);
                let l = build(&mut t);
                t.value(l).data[0]
            };
            store.get_mut(pid).data[i] = orig - eps;
            let minus = {
                let s = store.clone();
                let mut t = Tape::new(&s);
                let l = build(&mut t);
                t.value(l).data[0]
            };
            store.get_mut(pid).data[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads[pid.0].data[i];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "index {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    fn fixed_input(rows: usize, cols: usize, seed: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i as f32 * 0.37 + seed).sin()) * 0.8)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn grad_matmul_chain() {
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(1);
        let w = store.add_xavier("w", 4, 3, &mut rng);
        check_param_grad(
            &mut store,
            w,
            |tape| {
                let x = tape.input(fixed_input(2, 4, 0.1));
                let wv = tape.param(w);
                let y = tape.matmul(x, wv);
                let target = tape.input(fixed_input(2, 3, 0.9));
                tape.l1_loss(y, target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_silu_mul_swiglu_shape() {
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(2);
        let w1 = store.add_xavier("w1", 4, 6, &mut rng);
        let w3 = store.add_xavier("w3", 4, 6, &mut rng);
        for pid in [w1, w3] {
            check_param_grad(
                &mut store,
                pid,
                |tape| {
                    let x = tape.input(fixed_input(3, 4, 0.3));
                    let a = tape.param(w1);
                    let b = tape.param(w3);
                    let xa = tape.matmul(x, a);
                    let xs = tape.silu(xa);
                    let xb = tape.matmul(x, b);
                    let h = tape.mul(xs, xb);
                    let target = tape.input(fixed_input(3, 6, 0.7));
                    tape.l1_loss(h, target)
                },
                2e-2,
            );
        }
    }

    #[test]
    fn grad_rmsnorm() {
        let mut store = ParamStore::new();
        let gain = store.add_ones("g", 1, 5);
        check_param_grad(
            &mut store,
            gain,
            |tape| {
                let x = tape.input(fixed_input(3, 5, 0.2));
                let g = tape.param(gain);
                let y = tape.rms_norm(x, g);
                let target = tape.input(fixed_input(3, 5, 1.4));
                tape.l1_loss(y, target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_attention_block() {
        // Full single-head attention: q k^T -> causal softmax -> weights v.
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(3);
        let wq = store.add_xavier("wq", 4, 4, &mut rng);
        let wk = store.add_xavier("wk", 4, 4, &mut rng);
        let wv = store.add_xavier("wv", 4, 4, &mut rng);
        for pid in [wq, wk, wv] {
            check_param_grad(
                &mut store,
                pid,
                |tape| {
                    let x = tape.input(fixed_input(3, 4, 0.5));
                    let q = tape.param(wq);
                    let k = tape.param(wk);
                    let v = tape.param(wv);
                    let xq = tape.matmul(x, q);
                    let xk = tape.matmul(x, k);
                    let xv = tape.matmul(x, v);
                    let scores = tape.matmul_nt(xq, xk);
                    let scaled = tape.scale(scores, 0.5);
                    let attn = tape.causal_softmax(scaled);
                    let out = tape.matmul(attn, xv);
                    let target = tape.input(fixed_input(3, 4, 2.2));
                    tape.l1_loss(out, target)
                },
                3e-2,
            );
        }
    }

    #[test]
    fn grad_bias_and_concat_and_slice() {
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(4);
        let w = store.add_xavier("w", 6, 2, &mut rng);
        let b = store.add_zeros("b", 1, 2);
        for pid in [w, b] {
            check_param_grad(
                &mut store,
                pid,
                |tape| {
                    let x1 = tape.input(fixed_input(3, 2, 0.1));
                    let x2 = tape.input(fixed_input(3, 4, 0.6));
                    let x = tape.concat_cols(x1, x2);
                    let wv = tape.param(w);
                    let bv = tape.param(b);
                    let y = tape.matmul(x, wv);
                    let y = tape.add_bias(y, bv);
                    let last = tape.slice_row(y, 2);
                    let target = tape.input(fixed_input(1, 2, 0.4));
                    tape.l1_loss(last, target)
                },
                2e-2,
            );
        }
    }

    #[test]
    fn causal_softmax_masks_future() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(
            3,
            3,
            vec![1., 9., 9., 1., 2., 9., 1., 2., 3.],
        ));
        let y = tape.causal_softmax(x);
        let v = tape.value(y);
        // Upper triangle zero; rows sum to 1.
        assert_eq!(v.at(0, 1), 0.0);
        assert_eq!(v.at(0, 2), 0.0);
        assert_eq!(v.at(1, 2), 0.0);
        for r in 0..3 {
            let sum: f32 = (0..3).map(|c| v.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_gradient_zero_for_negatives() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![-1.0, 2.0]));
        let mut grads = store.zero_grads();
        let s = store.clone();
        let mut tape = Tape::new(&s);
        let wv = tape.param(w);
        let y = tape.relu(wv);
        let target = tape.input(Tensor::from_vec(1, 2, vec![5.0, 5.0]));
        let loss = tape.l1_loss(y, target);
        tape.backward(loss, &mut grads);
        assert_eq!(grads[0].data[0], 0.0, "negative input blocks gradient");
        assert!(grads[0].data[1] != 0.0);
    }

    #[test]
    fn reset_recycles_node_buffers() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(fixed_input(2, 3, 0.1));
        let y = tape.relu(x);
        let _ = tape.scale(y, 2.0);
        tape.reset();
        let arena = tape.recycle();
        assert!(
            arena.free_buffers() >= 3,
            "node buffers must return to the arena"
        );
    }
}
