//! No-tape inference fast path.
//!
//! [`crate::tape::Tape`]-based prediction records a graph node (and clones
//! every parameter tensor it touches) purely to enable `backward` — dead
//! weight for inference. This module re-implements the forward pass as
//! straight-line code over the same kernels:
//!
//! * parameters are read by reference from the [`crate::params::ParamStore`],
//! * every intermediate draws from a [`TensorArena`] (zero steady-state
//!   allocation after warmup),
//! * the SwiGLU gate is fused into one elementwise pass
//!   (`silu(a) * b`, same two multiplies in the same order as the chained
//!   `silu` + `mul` tape ops),
//! * the sparsity zero-skip is gated on one finiteness scan over all
//!   weights per call, hoisted out of the per-matmul scans.
//!
//! Bit-identity with the tape path holds by construction: matmuls call the
//! same blocked kernels on the same operand values, and the elementwise
//! stages (`rms_norm_into`, `causal_softmax_into`, bias/residual adds,
//! SiLU) are either shared helpers or replicate the tape ops' exact
//! per-element expressions. `predict_batch_bit_identical_to_predict` and
//! the proptest suite (`tests/prop.rs`) verify this against the retained
//! tape-based reference implementations in `model.rs`.

use crate::arena::{ArenaPool, TensorArena};
use crate::model::{M3Net, SampleInput};
use crate::tape::{causal_softmax_into, rms_norm_into, sigmoid};
use crate::tensor::{all_finite, Tensor};
use rayon::prelude::*;

/// Reusable scratch for the sequential batched forward pass. Hold one per
/// call site and the second call performs zero heap allocations.
#[derive(Debug, Default)]
pub struct InferScratch {
    arena: TensorArena,
    ctx_flat: Vec<f32>,
}

impl InferScratch {
    pub fn new() -> Self {
        InferScratch::default()
    }
}

impl M3Net {
    /// One finiteness scan over every parameter; the result gates the
    /// zero-skip in all matmuls of a forward pass (see `tensor.rs` module
    /// docs: skipping is only sound when the weight side is finite).
    fn weights_finite(&self) -> bool {
        self.store.iter().all(|p| all_finite(&p.value.data))
    }

    /// Transformer context of one sample written into `out` (`[embed]`),
    /// mirroring the tape-built graph in `M3Net::context` op for op.
    fn context_into(
        &self,
        sample: &SampleInput,
        arena: &mut TensorArena,
        zero_skip: bool,
        out: &mut [f32],
    ) {
        let embed = self.cfg.embed;
        debug_assert_eq!(out.len(), embed);
        if !sample.use_context || sample.bg.is_empty() {
            out.fill(0.0);
            return;
        }
        let l = sample.bg.len().min(self.cfg.block);
        for hop in sample.bg.iter().take(l) {
            assert_eq!(hop.len(), self.cfg.feat_dim, "background map width");
        }

        // x = bg · proj_w, consumed straight from the per-hop buffers (no
        // stack_rows copy), then bias and learned positions. The tape's
        // one-hot selector matmul reduces to the first `l` rows of `pos`.
        let mut x = arena.take(l, embed);
        Tensor::matmul_rows_into_gated(
            &sample.bg[..l],
            self.store.get(self.proj_w),
            &mut x,
            zero_skip,
        );
        {
            let bias = self.store.get(self.proj_b);
            let pos = self.store.get(self.pos);
            for r in 0..l {
                let row = &mut x.data[r * embed..(r + 1) * embed];
                for ((v, &b), &p) in row.iter_mut().zip(&bias.data).zip(pos.row_slice(r)) {
                    *v = (*v + b) + p;
                }
            }
        }

        let dh = self.cfg.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut normed = arena.take(l, embed);
        for layer in &self.layers {
            // Attention sublayer.
            rms_norm_into(&x, &self.store.get(layer.norm1).data, &mut normed.data);
            let mut attn_acc = arena.take(l, embed);
            for h in 0..self.cfg.heads {
                let mut q = arena.take(l, dh);
                let mut k = arena.take(l, dh);
                let mut v = arena.take(l, dh);
                Tensor::matmul_into_gated(&normed, self.store.get(layer.wq[h]), &mut q, zero_skip);
                Tensor::matmul_into_gated(&normed, self.store.get(layer.wk[h]), &mut k, zero_skip);
                Tensor::matmul_into_gated(&normed, self.store.get(layer.wv[h]), &mut v, zero_skip);
                let mut scores = arena.take(l, l);
                Tensor::matmul_nt_into(&q, &k, &mut scores);
                for s in scores.data.iter_mut() {
                    *s *= scale;
                }
                // Freshly taken => zeroed, as causal_softmax_into expects.
                let mut attn = arena.take(l, l);
                causal_softmax_into(&scores.data, l, &mut attn.data);
                let mut out_h = arena.take(l, dh);
                Tensor::matmul_into_gated(&attn, &v, &mut out_h, zero_skip);
                let mut proj = arena.take(l, embed);
                Tensor::matmul_into_gated(
                    &out_h,
                    self.store.get(layer.wo[h]),
                    &mut proj,
                    zero_skip,
                );
                // Heads combine left to right, matching the tape's fold.
                if h == 0 {
                    attn_acc.data.copy_from_slice(&proj.data);
                } else {
                    for (acc, &p) in attn_acc.data.iter_mut().zip(&proj.data) {
                        *acc += p;
                    }
                }
                for t in [q, k, v, scores, attn, out_h, proj] {
                    arena.give(t);
                }
            }
            for (xv, &a) in x.data.iter_mut().zip(&attn_acc.data) {
                *xv += a;
            }
            arena.give(attn_acc);

            // SwiGLU feed-forward sublayer, gate fused into one pass.
            rms_norm_into(&x, &self.store.get(layer.norm2).data, &mut normed.data);
            let mut a = arena.take(l, self.cfg.ff_hidden);
            let mut b = arena.take(l, self.cfg.ff_hidden);
            Tensor::matmul_into_gated(&normed, self.store.get(layer.w1), &mut a, zero_skip);
            Tensor::matmul_into_gated(&normed, self.store.get(layer.w3), &mut b, zero_skip);
            for (av, &bv) in a.data.iter_mut().zip(&b.data) {
                let xv = *av;
                *av = (xv * sigmoid(xv)) * bv;
            }
            let mut ff = arena.take(l, embed);
            Tensor::matmul_into_gated(&a, self.store.get(layer.w2), &mut ff, zero_skip);
            for (xv, &f) in x.data.iter_mut().zip(&ff.data) {
                *xv += f;
            }
            for t in [a, b, ff] {
                arena.give(t);
            }
        }

        rms_norm_into(&x, &self.store.get(self.final_norm).data, &mut normed.data);
        out.copy_from_slice(&normed.data[(l - 1) * embed..l * embed]);
        arena.give(x);
        arena.give(normed);
    }

    /// Batched MLP head over pre-joined rows; returns the `[k, out_dim]`
    /// output (caller gives it back to the arena).
    fn mlp_head(&self, joined: &Tensor, arena: &mut TensorArena, zero_skip: bool) -> Tensor {
        let mut h = arena.take(joined.rows, self.cfg.mlp_hidden);
        Tensor::matmul_into_gated(joined, self.store.get(self.mlp_w1), &mut h, zero_skip);
        {
            let b1 = self.store.get(self.mlp_b1);
            for r in 0..h.rows {
                let row = &mut h.data[r * h.cols..(r + 1) * h.cols];
                for (v, &b) in row.iter_mut().zip(&b1.data) {
                    *v = (*v + b).max(0.0);
                }
            }
        }
        let mut out = arena.take(joined.rows, self.cfg.out_dim);
        Tensor::matmul_into_gated(&h, self.store.get(self.mlp_w2), &mut out, zero_skip);
        {
            let b2 = self.store.get(self.mlp_b2);
            for r in 0..out.rows {
                let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
                for (v, &b) in row.iter_mut().zip(&b2.data) {
                    *v += b;
                }
            }
        }
        arena.give(h);
        out
    }

    fn check_sample_widths(&self, samples: &[SampleInput]) {
        for s in samples {
            assert_eq!(s.fg.len(), self.cfg.feat_dim, "foreground map width");
            assert_eq!(s.spec.len(), self.cfg.spec_dim, "spec vector width");
        }
    }

    fn fill_joined(&self, joined: &mut Tensor, samples: &[SampleInput], ctx_flat: &[f32]) {
        let embed = self.cfg.embed;
        let mlp_in = joined.cols;
        for (i, s) in samples.iter().enumerate() {
            let row = &mut joined.data[i * mlp_in..(i + 1) * mlp_in];
            row[..self.cfg.feat_dim].copy_from_slice(&s.fg);
            row[self.cfg.feat_dim..self.cfg.feat_dim + embed]
                .copy_from_slice(&ctx_flat[i * embed..(i + 1) * embed]);
            row[self.cfg.feat_dim + embed..].copy_from_slice(&s.spec);
        }
    }

    /// Inference: run the forward pass and return the output vector.
    /// Bit-identical to the retained tape path ([`M3Net::predict_reference`]).
    pub fn predict(&self, sample: &SampleInput) -> Vec<f32> {
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        self.predict_batch_into(std::slice::from_ref(sample), &mut scratch, &mut out);
        out.pop().unwrap_or_default()
    }

    /// Sequential batched inference into reused buffers: with a warm
    /// `scratch` and `out`, a repeat call over the same shapes performs
    /// zero heap allocations (asserted by `tests/alloc.rs`).
    pub fn predict_batch_into(
        &self,
        samples: &[SampleInput],
        scratch: &mut InferScratch,
        out: &mut Vec<Vec<f32>>,
    ) {
        if samples.is_empty() {
            out.clear();
            return;
        }
        self.check_sample_widths(samples);
        let zero_skip = self.weights_finite();
        let embed = self.cfg.embed;
        let k = samples.len();
        scratch.ctx_flat.clear();
        scratch.ctx_flat.resize(k * embed, 0.0);
        for (i, s) in samples.iter().enumerate() {
            let dst = &mut scratch.ctx_flat[i * embed..(i + 1) * embed];
            self.context_into(s, &mut scratch.arena, zero_skip, dst);
        }
        let mlp_in = self.cfg.feat_dim + embed + self.cfg.spec_dim;
        let mut joined = scratch.arena.take(k, mlp_in);
        self.fill_joined(&mut joined, samples, &scratch.ctx_flat);
        let o = self.mlp_head(&joined, &mut scratch.arena, zero_skip);
        scratch.arena.give(joined);
        out.resize_with(k, Vec::new);
        for (i, dst) in out.iter_mut().enumerate() {
            dst.clear();
            dst.extend_from_slice(o.row_slice(i));
        }
        scratch.arena.give(o);
    }

    /// Batched inference: one output vector per sample, bit-for-bit equal
    /// to calling [`M3Net::predict`] on each sample individually.
    ///
    /// The per-hop background sequences have different lengths, so the
    /// transformer contexts are computed per sample (in parallel, each
    /// worker drawing a warm arena from a transient pool); the sample rows
    /// `[fg ∥ context ∥ spec]` then go through a single batched MLP head.
    pub fn predict_batch(&self, samples: &[SampleInput]) -> Vec<Vec<f32>> {
        self.predict_batch_pooled(samples, &ArenaPool::new())
    }

    /// [`M3Net::predict_batch`] drawing all scratch from a caller-held
    /// [`ArenaPool`], so repeated estimates reuse warm buffers.
    pub fn predict_batch_pooled(&self, samples: &[SampleInput], pool: &ArenaPool) -> Vec<Vec<f32>> {
        if samples.is_empty() {
            return Vec::new();
        }
        self.check_sample_widths(samples);
        let zero_skip = self.weights_finite();
        let embed = self.cfg.embed;

        // Contiguous chunks, one per worker; the vendored rayon preserves
        // chunk order, so the concatenated contexts are in sample order.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let chunk_len = samples.len().div_ceil(workers);
        let chunks: Vec<&[SampleInput]> = samples.chunks(chunk_len).collect();
        let ctx_parts: Vec<Vec<f32>> = chunks
            .par_iter()
            .map(|part| {
                let mut arena = pool.take();
                let mut flat = vec![0.0f32; part.len() * embed];
                for (i, s) in part.iter().enumerate() {
                    let dst = &mut flat[i * embed..(i + 1) * embed];
                    self.context_into(s, &mut arena, zero_skip, dst);
                }
                pool.put(arena);
                flat
            })
            .collect();
        let mut ctx_flat = Vec::with_capacity(samples.len() * embed);
        for part in &ctx_parts {
            ctx_flat.extend_from_slice(part);
        }

        let mut arena = pool.take();
        let mlp_in = self.cfg.feat_dim + embed + self.cfg.spec_dim;
        let mut joined = arena.take(samples.len(), mlp_in);
        self.fill_joined(&mut joined, samples, &ctx_flat);
        let o = self.mlp_head(&joined, &mut arena, zero_skip);
        arena.give(joined);
        let outputs = (0..o.rows).map(|r| o.row_slice(r).to_vec()).collect();
        arena.give(o);
        pool.put(arena);
        outputs
    }
}
