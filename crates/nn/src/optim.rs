//! Adam optimizer with global-norm gradient clipping.

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Clip gradients to this global L2 norm before stepping (0 disables).
    pub clip_norm: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 1.0,
            m: store.zero_grads(),
            v: store.zero_grads(),
            t: 0,
        }
    }

    /// Apply one update from the given gradients (not consumed; the caller
    /// may inspect them). Gradients are clipped to `clip_norm` globally.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.len(), "gradient/parameter mismatch");
        self.t += 1;
        let scale = if self.clip_norm > 0.0 {
            let norm: f32 = grads
                .iter()
                .flat_map(|g| g.data.iter())
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            if norm > self.clip_norm {
                self.clip_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = store.get_mut(crate::params::ParamId(i));
            for j in 0..g.data.len() {
                let gj = g.data[j] * scale;
                m.data[j] = self.beta1 * m.data[j] + (1.0 - self.beta1) * gj;
                v.data[j] = self.beta2 * v.data[j] + (1.0 - self.beta2) * gj * gj;
                let mhat = m.data[j] / bc1;
                let vhat = v.data[j] / bc2;
                p.data[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // One parameter, loss = (x - 3)^2, gradient = 2(x - 3).
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(&store, 0.1);
        opt.clip_norm = 0.0;
        for _ in 0..500 {
            let x = store.get(id).data[0];
            let grads = vec![Tensor::from_vec(1, 1, vec![2.0 * (x - 3.0)])];
            opt.step(&mut store, &grads);
        }
        let x = store.get(id).data[0];
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        store.add("x", Tensor::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(&store, 0.1);
        opt.clip_norm = 1.0;
        // Enormous gradient: update must stay bounded by lr-ish magnitude.
        let grads = vec![Tensor::from_vec(1, 1, vec![1e9])];
        opt.step(&mut store, &grads);
        let x = store.get(crate::params::ParamId(0)).data[0];
        assert!(x.abs() <= 0.2, "clipped step too large: {x}");
    }

    #[test]
    fn step_counts_bias_correction() {
        let mut store = ParamStore::new();
        store.add("x", Tensor::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(&store, 0.001);
        let grads = vec![Tensor::from_vec(1, 1, vec![1.0])];
        opt.step(&mut store, &grads);
        // First step with bias correction moves by ~lr.
        let x = store.get(crate::params::ParamId(0)).data[0];
        assert!((1.0 - x - 0.001).abs() < 1e-4);
    }
}
