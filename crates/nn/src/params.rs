//! Learnable parameter storage, separated from gradients so the store can be
//! shared read-only across rayon workers during batched forward/backward.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Handle to one parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub value: Tensor,
}

/// All learnable parameters of a model, in registration order. Checkpoints
/// serialize the store; optimizers keep per-parameter state aligned by index.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.params.push(Param {
            name: name.into(),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut SmallRng,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        // Allocate through the checked constructor first so an overflowing
        // shape panics identically in debug and release.
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data.iter_mut() {
            *v = rng.gen_range(-bound..bound);
        }
        self.add(name, t)
    }

    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    pub fn add_ones(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        let mut t = Tensor::zeros(rows, cols);
        t.data.fill(1.0);
        self.add(name, t)
    }

    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Total scalar parameter count (for the "16.8M parameters" style report).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Fresh zeroed gradient buffers aligned with this store.
    pub fn zero_grads(&self) -> Vec<Tensor> {
        self.params
            .iter()
            .map(|p| Tensor::zeros(p.value.rows, p.value.cols))
            .collect()
    }

    /// Make a deterministic RNG for initialization.
    pub fn seeded_rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_and_counts() {
        let mut s = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(0);
        let a = s.add_xavier("a", 3, 4, &mut rng);
        let b = s.add_zeros("b", 2, 2);
        assert_eq!(a, ParamId(0));
        assert_eq!(b, ParamId(1));
        assert_eq!(s.num_scalars(), 16);
        assert_eq!(s.zero_grads().len(), 2);
    }

    #[test]
    fn xavier_within_bound() {
        let mut s = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(1);
        let id = s.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(s.get(id).data.iter().all(|&v| v.abs() <= bound));
        // Not all zero.
        assert!(s.get(id).data.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deterministic_init() {
        let build = || {
            let mut s = ParamStore::new();
            let mut rng = ParamStore::seeded_rng(7);
            s.add_xavier("w", 5, 5, &mut rng);
            s
        };
        assert_eq!(build().get(ParamId(0)).data, build().get(ParamId(0)).data);
    }
}
