//! Shared integrity helpers: a stable 64-bit content checksum and a
//! checksummed record framing for append-only journals.
//!
//! The framing follows the same hardening idioms as [`crate::checkpoint`]:
//! every length field is bounds-checked *before* it sizes an allocation, and
//! a corrupt or truncated tail yields a typed outcome instead of a panic or
//! an OOM. The `m3-serve` write-ahead job journal is the primary consumer;
//! the helpers live here so every crate that persists state shares one
//! checksum and one framing discipline.
//!
//! Record layout (little-endian):
//!
//! ```text
//! [len: u32] [checksum: u64 = fnv1a64(payload)] [payload: len bytes]
//! ```
//!
//! A scan of a journal tail distinguishes three outcomes per record
//! boundary: a complete, checksum-valid record; a clean end of input; or a
//! *torn tail* (truncated or corrupt trailing bytes, the expected residue of
//! a crash mid-append). Everything before a torn tail remains usable.

use std::io::{self, Write};

/// Ceiling on a single framed record. Real journal records are well under a
/// kilobyte; anything larger is a corrupt or hostile length field (the same
/// rationale as the checkpoint header cap).
pub const MAX_RECORD_BYTES: usize = 16 << 20;

/// FNV-1a 64-bit over a byte slice: tiny, dependency-free, and stable
/// across platforms and runs, so checksums written by one process validate
/// in another.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Frame one payload as a checksummed record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one framed record to `w` (no flushing/syncing — callers own
/// durability).
pub fn write_record<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_record(payload))
}

/// Result of scanning a buffer of framed records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Payloads of every complete, checksum-valid record, in order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset just past the last valid record. Appending must resume
    /// here (truncating any torn tail first).
    pub valid_len: usize,
    /// Why the scan stopped early, if it did: a truncated or corrupt tail.
    /// `None` means the buffer ended exactly on a record boundary.
    pub torn: Option<String>,
}

/// Scan `buf` from `start` for framed records, stopping at the first
/// truncated or corrupt one. Never panics and never allocates more than the
/// buffer already holds (lengths are validated against the remaining bytes
/// and [`MAX_RECORD_BYTES`] before use).
pub fn scan_records(buf: &[u8], start: usize) -> ScanResult {
    let mut records = Vec::new();
    let mut off = start.min(buf.len());
    loop {
        let rest = &buf[off..];
        if rest.is_empty() {
            return ScanResult {
                records,
                valid_len: off,
                torn: None,
            };
        }
        if rest.len() < 12 {
            return ScanResult {
                records,
                valid_len: off,
                torn: Some(format!("truncated header ({} bytes)", rest.len())),
            };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_BYTES {
            return ScanResult {
                records,
                valid_len: off,
                torn: Some(format!(
                    "record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"
                )),
            };
        }
        let want = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if rest.len() < 12 + len {
            return ScanResult {
                records,
                valid_len: off,
                torn: Some(format!(
                    "truncated payload ({} of {len} bytes)",
                    rest.len() - 12
                )),
            };
        }
        let payload = &rest[12..12 + len];
        if checksum64(payload) != want {
            return ScanResult {
                records,
                valid_len: off,
                torn: Some("checksum mismatch".into()),
            };
        }
        records.push(payload.to_vec());
        off += 12 + len;
    }
}

/// One frame skipped by the lenient scan: its framing was intact (sane
/// length, full payload present) but the payload failed its checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptFrame {
    /// Byte offset of the frame's length field within the scanned buffer.
    pub offset: usize,
    /// The whole frame as found on disk (12-byte header + payload), so a
    /// quarantine sidecar preserves the evidence byte for byte.
    pub bytes: Vec<u8>,
    /// Why the frame was rejected.
    pub reason: String,
}

/// Result of a lenient scan: valid records, quarantined corrupt frames,
/// and the torn-tail outcome for whatever ended the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LenientScanResult {
    /// Payloads of every complete, checksum-valid record, in order.
    pub records: Vec<Vec<u8>>,
    /// Frames whose framing was intact but whose checksum failed, in
    /// order. The scan resumed at the frame boundary after each.
    pub corrupt: Vec<CorruptFrame>,
    /// Byte offset just past the last complete frame (valid or
    /// quarantined). A torn tail begins here.
    pub valid_len: usize,
    /// Why the scan stopped early, if it did: a *truncated* or
    /// hostile-length tail (a checksum mismatch alone no longer stops a
    /// lenient scan).
    pub torn: Option<String>,
}

/// Scan `buf` from `start` like [`scan_records`], but *skip over* a
/// checksum-mismatched record whose framing is otherwise intact instead of
/// stopping: its length field is sane (≤ [`MAX_RECORD_BYTES`]) and its
/// payload lies fully inside the buffer, so the next frame boundary is
/// known and scanning resumes there. Such frames are returned for
/// quarantine rather than silently dropped. Truncation and hostile length
/// fields still end the scan — with no trustworthy length there is no next
/// boundary to resume at.
pub fn scan_records_lenient(buf: &[u8], start: usize) -> LenientScanResult {
    let mut records = Vec::new();
    let mut corrupt = Vec::new();
    let mut off = start.min(buf.len());
    loop {
        let rest = &buf[off..];
        if rest.is_empty() {
            return LenientScanResult {
                records,
                corrupt,
                valid_len: off,
                torn: None,
            };
        }
        if rest.len() < 12 {
            return LenientScanResult {
                records,
                corrupt,
                valid_len: off,
                torn: Some(format!("truncated header ({} bytes)", rest.len())),
            };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_BYTES {
            return LenientScanResult {
                records,
                corrupt,
                valid_len: off,
                torn: Some(format!(
                    "record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"
                )),
            };
        }
        let want = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if rest.len() < 12 + len {
            return LenientScanResult {
                records,
                corrupt,
                valid_len: off,
                torn: Some(format!(
                    "truncated payload ({} of {len} bytes)",
                    rest.len() - 12
                )),
            };
        }
        let payload = &rest[12..12 + len];
        if checksum64(payload) != want {
            corrupt.push(CorruptFrame {
                offset: off,
                bytes: rest[..12 + len].to_vec(),
                reason: format!(
                    "checksum mismatch (stored {want:#018x}, computed {:#018x})",
                    checksum64(payload)
                ),
            });
        } else {
            records.push(payload.to_vec());
        }
        off += 12 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"m3"), checksum64(b"m3"));
        assert_ne!(checksum64(b"m3"), checksum64(b"m4"));
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = Vec::new();
        for p in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            write_record(&mut buf, p).unwrap();
        }
        let scan = scan_records(&buf, 0);
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), vec![], b"gamma!".to_vec()]
        );
        assert_eq!(scan.valid_len, buf.len());
        assert!(scan.torn.is_none());
    }

    #[test]
    fn torn_tail_preserves_prefix() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"kept").unwrap();
        let keep = buf.len();
        write_record(&mut buf, b"torn-away").unwrap();
        // Simulate a crash mid-append: drop the last few bytes.
        buf.truncate(buf.len() - 3);
        let scan = scan_records(&buf, 0);
        assert_eq!(scan.records, vec![b"kept".to_vec()]);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn.unwrap().contains("truncated"));
    }

    #[test]
    fn corrupt_payload_stops_scan() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"first").unwrap();
        let keep = buf.len();
        write_record(&mut buf, b"second").unwrap();
        let flip = keep + 12; // first payload byte of the second record
        buf[flip] ^= 0xff;
        let scan = scan_records(&buf, 0);
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.torn.as_deref(), Some("checksum mismatch"));
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let scan = scan_records(&buf, 0);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.unwrap().contains("cap"));
    }

    #[test]
    fn scan_respects_start_offset() {
        let mut buf = b"MAGICHDR".to_vec();
        let start = buf.len();
        write_record(&mut buf, b"payload").unwrap();
        let scan = scan_records(&buf, start);
        assert_eq!(scan.records, vec![b"payload".to_vec()]);
        assert_eq!(scan.valid_len, buf.len());
    }

    #[test]
    fn lenient_scan_skips_corrupt_record_and_continues() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"first").unwrap();
        let second_at = buf.len();
        write_record(&mut buf, b"second").unwrap();
        let third_at = buf.len();
        write_record(&mut buf, b"third").unwrap();
        buf[second_at + 12] ^= 0xff; // flip a payload bit mid-file
        let scan = scan_records_lenient(&buf, 0);
        assert_eq!(scan.records, vec![b"first".to_vec(), b"third".to_vec()]);
        assert_eq!(scan.corrupt.len(), 1);
        assert_eq!(scan.corrupt[0].offset, second_at);
        assert_eq!(scan.corrupt[0].bytes.len(), third_at - second_at);
        assert!(scan.corrupt[0].reason.contains("checksum mismatch"));
        assert_eq!(scan.valid_len, buf.len());
        assert!(scan.torn.is_none());
    }

    #[test]
    fn lenient_scan_still_stops_at_torn_tail() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"kept").unwrap();
        let keep = buf.len();
        write_record(&mut buf, b"torn-away").unwrap();
        buf.truncate(buf.len() - 3);
        let scan = scan_records_lenient(&buf, 0);
        assert_eq!(scan.records, vec![b"kept".to_vec()]);
        assert!(scan.corrupt.is_empty());
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn.unwrap().contains("truncated"));
    }

    #[test]
    fn lenient_scan_rejects_hostile_length_without_resync() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"good").unwrap();
        let keep = buf.len();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let scan = scan_records_lenient(&buf, 0);
        assert_eq!(scan.records, vec![b"good".to_vec()]);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn.unwrap().contains("cap"));
    }

    #[test]
    fn lenient_scan_matches_strict_scan_on_clean_input() {
        let mut buf = Vec::new();
        for p in [b"one".as_slice(), b"two".as_slice(), b"three".as_slice()] {
            write_record(&mut buf, p).unwrap();
        }
        let strict = scan_records(&buf, 0);
        let lenient = scan_records_lenient(&buf, 0);
        assert_eq!(strict.records, lenient.records);
        assert_eq!(strict.valid_len, lenient.valid_len);
        assert!(lenient.corrupt.is_empty());
        assert!(lenient.torn.is_none());
    }
}
