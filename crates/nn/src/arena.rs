//! Preallocated tensor scratch.
//!
//! [`TensorArena`] is a free list of `Vec<f32>` buffers: `take` hands out a
//! zero-filled [`Tensor`] (reusing the best-fitting retired buffer),
//! `give` retires a tensor's buffer back to the list. After one warmup
//! pass over every shape a workload needs, the arena serves all requests
//! from the free list — zero steady-state heap allocation. The tape, the
//! inference fast path, and `predict_batch` all draw from it.
//!
//! [`ArenaPool`] is the thread-safe variant for fork/join workers: each
//! worker pops a whole arena, runs with exclusive access, and pushes it
//! back. (The vendored rayon shim runs closures on scoped threads that do
//! not persist across calls, so thread-locals cannot carry warm buffers
//! between batches — a pool can.)

use crate::tensor::Tensor;
use std::sync::Mutex;

#[derive(Debug, Default)]
pub struct TensorArena {
    free: Vec<Vec<f32>>,
}

impl TensorArena {
    pub fn new() -> Self {
        TensorArena { free: Vec::new() }
    }

    /// Number of retired buffers currently held.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// A zero-filled `[rows, cols]` tensor, reusing a retired buffer when
    /// one is large enough (best fit: the smallest adequate capacity, so
    /// big buffers stay available for big requests).
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        let n = match rows.checked_mul(cols) {
            Some(n) => n,
            None => panic!("tensor shape {rows}x{cols} overflows usize"),
        };
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= n && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        let mut data = match best {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(n),
        };
        data.clear();
        data.resize(n, 0.0);
        Tensor { rows, cols, data }
    }

    /// Retire a tensor's buffer for reuse.
    pub fn give(&mut self, t: Tensor) {
        self.free.push(t.data);
    }
}

/// Mutex-guarded stack of arenas for parallel workers.
#[derive(Debug, Default)]
pub struct ArenaPool {
    arenas: Mutex<Vec<TensorArena>>,
}

impl ArenaPool {
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Pop a warm arena, or start a fresh one.
    pub fn take(&self) -> TensorArena {
        match self.arenas.lock() {
            Ok(mut v) => v.pop().unwrap_or_default(),
            Err(_) => TensorArena::new(),
        }
    }

    /// Return an arena for the next worker.
    pub fn put(&self, arena: TensorArena) {
        if let Ok(mut v) = self.arenas.lock() {
            v.push(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_reuses_buffers() {
        let mut arena = TensorArena::new();
        let mut t = arena.take(2, 3);
        assert_eq!(t.data, vec![0.0; 6]);
        t.data.iter_mut().for_each(|v| *v = 7.0);
        let cap = t.data.capacity();
        arena.give(t);
        assert_eq!(arena.free_buffers(), 1);
        let t2 = arena.take(3, 2);
        assert_eq!(t2.data, vec![0.0; 6], "reused buffer must be re-zeroed");
        assert_eq!(t2.data.capacity(), cap, "buffer should be recycled");
        assert_eq!(arena.free_buffers(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut arena = TensorArena::new();
        let big = arena.take(10, 10);
        let small = arena.take(1, 4);
        let (big_cap, small_cap) = (big.data.capacity(), small.data.capacity());
        arena.give(big);
        arena.give(small);
        let t = arena.take(2, 2);
        assert_eq!(t.data.capacity(), small_cap);
        let t2 = arena.take(5, 5);
        assert_eq!(t2.data.capacity(), big_cap);
    }

    #[test]
    fn pool_round_trips_arenas() {
        let pool = ArenaPool::new();
        let mut a = pool.take();
        a.give(Tensor::zeros(1, 8));
        pool.put(a);
        let b = pool.take();
        assert_eq!(b.free_buffers(), 1);
    }
}
