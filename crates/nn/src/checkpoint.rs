//! Model checkpoints: a compact self-describing binary container
//! (magic + JSON header with the config and parameter shapes, then raw
//! little-endian f32 data). No heavyweight serialization dependency needed.

use crate::model::{M3Net, ModelConfig};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"M3NN";
const VERSION: u32 = 1;
/// Ceiling on the JSON header length a reader will accept. Real headers are
/// a few hundred bytes; anything larger is a corrupt or hostile length field.
const MAX_HEADER_BYTES: usize = 1 << 20;

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    config: ModelConfig,
    /// (name, rows, cols) per parameter, in store order.
    params: Vec<(String, usize, usize)>,
    /// Seed the net was constructed with (layout reproducibility).
    seed: u64,
}

/// Serialize a model to a writer.
pub fn save<W: Write>(net: &M3Net, seed: u64, mut w: W) -> io::Result<()> {
    let header = Header {
        config: net.cfg.clone(),
        params: net
            .store
            .iter()
            .map(|p| (p.name.clone(), p.value.rows, p.value.cols))
            .collect(),
        seed,
    };
    let json = serde_json::to_vec(&header).map_err(io::Error::other)?;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(json.len() as u32).to_le_bytes())?;
    w.write_all(&json)?;
    for p in net.store.iter() {
        for &v in &p.value.data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Deserialize a model from a reader.
///
/// Every header-claimed quantity is validated *before* it sizes an
/// allocation: the JSON length is capped, the config's dimensions are
/// bounds-checked via [`ModelConfig::validate`], and each parameter's
/// claimed shape must match the architecture implied by the config. A
/// corrupt or hostile header therefore yields `InvalidData` (or
/// `UnexpectedEof` on truncation), never an OOM.
pub fn load<R: Read>(mut r: R) -> io::Result<M3Net> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(invalid(format!("unsupported checkpoint version {version}")));
    }
    r.read_exact(&mut buf4)?;
    let json_len = u32::from_le_bytes(buf4) as usize;
    if json_len > MAX_HEADER_BYTES {
        return Err(invalid(format!(
            "header length {json_len} exceeds the {MAX_HEADER_BYTES}-byte cap"
        )));
    }
    let mut json = vec![0u8; json_len];
    r.read_exact(&mut json)?;
    let header: Header = serde_json::from_slice(&json).map_err(io::Error::other)?;
    header
        .config
        .validate()
        .map_err(|reason| invalid(format!("invalid checkpoint config: {reason}")))?;

    // Rebuild the net with the recorded seed to recover the layout. The
    // config was validated above, so this allocation is bounded.
    let mut net = M3Net::new(header.config, header.seed);
    if net.store.len() != header.params.len() {
        return Err(invalid(
            "checkpoint parameter count does not match architecture",
        ));
    }
    // Shape-check the header's claims against the architecture BEFORE
    // reading (and allocating) any payload: the payload buffers below are
    // then sized by the validated architecture, not by untrusted input.
    for (fresh, (name, rows, cols)) in net.store.iter().zip(&header.params) {
        if fresh.value.shape() != (*rows, *cols) || &fresh.name != name {
            return Err(invalid(format!(
                "parameter mismatch: expected {} {:?}, found {} {:?}",
                fresh.name,
                fresh.value.shape(),
                name,
                (*rows, *cols)
            )));
        }
    }
    let mut new_store = ParamStore::new();
    for (name, rows, cols) in &header.params {
        // Shape arithmetic stays checked even though the shapes were
        // validated above: `rows * cols` on hostile input must never wrap.
        let n = rows
            .checked_mul(*cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| invalid(format!("parameter {name} shape overflows")))?;
        let mut data = vec![0f32; n / 4];
        let mut bytes = vec![0u8; n];
        r.read_exact(&mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let mut le = [0u8; 4];
            le.copy_from_slice(chunk);
            data[i] = f32::from_le_bytes(le);
        }
        let tensor = Tensor::try_from_vec(*rows, *cols, data)
            .map_err(|e| invalid(format!("parameter {name}: {e}")))?;
        new_store.add(name.clone(), tensor);
    }
    net.store = new_store;
    Ok(net)
}

/// Save to a file path atomically: write to a sibling temp file, fsync it,
/// then rename over the destination. A crash mid-save can leave a stray
/// temp file but never a truncated checkpoint at `path`.
pub fn save_file(net: &M3Net, seed: u64, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| invalid("checkpoint path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let f = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(f);
        save(net, seed, &mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> io::Result<M3Net> {
    let f = std::fs::File::open(path)?;
    load(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampleInput;

    fn tiny_net() -> M3Net {
        let cfg = ModelConfig {
            feat_dim: 10,
            spec_dim: 3,
            out_dim: 4,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 4,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        M3Net::new(cfg, 11)
    }

    fn sample() -> SampleInput {
        SampleInput {
            fg: (0..10).map(|i| i as f32 * 0.1).collect(),
            bg: vec![(0..10).map(|i| i as f32 * 0.05).collect()],
            spec: vec![0.1, 0.2, 0.3],
            use_context: true,
        }
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let net = tiny_net();
        let mut buf = Vec::new();
        save(&net, 11, &mut buf).unwrap();
        let loaded = load(&buf[..]).unwrap();
        assert_eq!(net.predict(&sample()), loaded.predict(&sample()));
        assert_eq!(net.num_params(), loaded.num_params());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&b"XXXXgarbage"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated() {
        let net = tiny_net();
        let mut buf = Vec::new();
        save(&net, 11, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn rejects_oversized_header_length() {
        // magic + version + a 3 GiB header-length claim. A naive reader
        // would allocate 3 GiB before noticing the stream ends.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(3_000_000_000u32).to_le_bytes());
        let err = load(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn rejects_absurd_config_dimensions() {
        // A parseable header whose config implies terabytes of parameters
        // must be rejected by validation, not by the allocator.
        let mut cfg = tiny_net().cfg;
        cfg.feat_dim = 1 << 19;
        cfg.mlp_hidden = 1 << 14;
        let header = Header {
            config: cfg,
            params: vec![],
            seed: 0,
        };
        let json = serde_json::to_vec(&header).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(json.len() as u32).to_le_bytes());
        buf.extend_from_slice(&json);
        let err = load(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("invalid checkpoint config"),
            "{err}"
        );
    }

    #[test]
    fn rejects_mismatched_parameter_shape() {
        let net = tiny_net();
        let mut buf = Vec::new();
        save(&net, 11, &mut buf).unwrap();
        // Corrupt the header: inflate the first parameter's row count.
        let json_len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        let mut header: Header = serde_json::from_slice(&buf[12..12 + json_len]).unwrap();
        header.params[0].1 *= 1000;
        let json = serde_json::to_vec(&header).unwrap();
        let mut corrupt = Vec::new();
        corrupt.extend_from_slice(MAGIC);
        corrupt.extend_from_slice(&VERSION.to_le_bytes());
        corrupt.extend_from_slice(&(json.len() as u32).to_le_bytes());
        corrupt.extend_from_slice(&json);
        corrupt.extend_from_slice(&buf[12 + json_len..]);
        let err = load(&corrupt[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("parameter mismatch"), "{err}");
    }

    #[test]
    fn atomic_save_overwrites_and_leaves_no_temp() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join("m3nn_test_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        std::fs::write(&path, b"stale garbage").unwrap();
        save_file(&net, 11, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(net.predict(&sample()), loaded.predict(&sample()));
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp file left behind: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join("m3nn_test_ckpt.bin");
        save_file(&net, 11, &dir).unwrap();
        let loaded = load_file(&dir).unwrap();
        assert_eq!(net.predict(&sample()), loaded.predict(&sample()));
        let _ = std::fs::remove_file(dir);
    }
}
