//! Model checkpoints: a compact self-describing binary container
//! (magic + JSON header with the config and parameter shapes, then raw
//! little-endian f32 data). No heavyweight serialization dependency needed.

use crate::model::{M3Net, ModelConfig};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"M3NN";
const VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    config: ModelConfig,
    /// (name, rows, cols) per parameter, in store order.
    params: Vec<(String, usize, usize)>,
    /// Seed the net was constructed with (layout reproducibility).
    seed: u64,
}

/// Serialize a model to a writer.
pub fn save<W: Write>(net: &M3Net, seed: u64, mut w: W) -> io::Result<()> {
    let header = Header {
        config: net.cfg.clone(),
        params: net
            .store
            .iter()
            .map(|p| (p.name.clone(), p.value.rows, p.value.cols))
            .collect(),
        seed,
    };
    let json = serde_json::to_vec(&header).map_err(io::Error::other)?;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(json.len() as u32).to_le_bytes())?;
    w.write_all(&json)?;
    for p in net.store.iter() {
        for &v in &p.value.data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a model from a reader.
pub fn load<R: Read>(mut r: R) -> io::Result<M3Net> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    r.read_exact(&mut buf4)?;
    let json_len = u32::from_le_bytes(buf4) as usize;
    let mut json = vec![0u8; json_len];
    r.read_exact(&mut json)?;
    let header: Header = serde_json::from_slice(&json).map_err(io::Error::other)?;

    // Rebuild the net with the recorded seed to recover the layout, then
    // overwrite every parameter with the stored data.
    let mut net = M3Net::new(header.config, header.seed);
    if net.store.len() != header.params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint parameter count does not match architecture",
        ));
    }
    let mut new_store = ParamStore::new();
    for (name, rows, cols) in &header.params {
        let mut data = vec![0f32; rows * cols];
        let mut bytes = vec![0u8; rows * cols * 4];
        r.read_exact(&mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            data[i] = f32::from_le_bytes(chunk.try_into().unwrap());
        }
        new_store.add(name.clone(), Tensor::from_vec(*rows, *cols, data));
    }
    // Shape check against the freshly constructed layout.
    for (fresh, loaded) in net.store.iter().zip(new_store.iter()) {
        if fresh.value.shape() != loaded.value.shape() || fresh.name != loaded.name {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter mismatch: expected {} {:?}, found {} {:?}",
                    fresh.name,
                    fresh.value.shape(),
                    loaded.name,
                    loaded.value.shape()
                ),
            ));
        }
    }
    net.store = new_store;
    Ok(net)
}

/// Save to a file path.
pub fn save_file(net: &M3Net, seed: u64, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save(net, seed, io::BufWriter::new(f))
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> io::Result<M3Net> {
    let f = std::fs::File::open(path)?;
    load(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampleInput;

    fn tiny_net() -> M3Net {
        let cfg = ModelConfig {
            feat_dim: 10,
            spec_dim: 3,
            out_dim: 4,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 4,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        M3Net::new(cfg, 11)
    }

    fn sample() -> SampleInput {
        SampleInput {
            fg: (0..10).map(|i| i as f32 * 0.1).collect(),
            bg: vec![(0..10).map(|i| i as f32 * 0.05).collect()],
            spec: vec![0.1, 0.2, 0.3],
            use_context: true,
        }
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let net = tiny_net();
        let mut buf = Vec::new();
        save(&net, 11, &mut buf).unwrap();
        let loaded = load(&buf[..]).unwrap();
        assert_eq!(net.predict(&sample()), loaded.predict(&sample()));
        assert_eq!(net.num_params(), loaded.num_params());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&b"XXXXgarbage"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated() {
        let net = tiny_net();
        let mut buf = Vec::new();
        save(&net, 11, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join("m3nn_test_ckpt.bin");
        save_file(&net, 11, &dir).unwrap();
        let loaded = load_file(&dir).unwrap();
        assert_eq!(net.predict(&sample()), loaded.predict(&sample()));
        let _ = std::fs::remove_file(dir);
    }
}
