//! # m3-nn
//!
//! A minimal pure-Rust neural-network stack built for the m3 model: 2-D
//! tensors, tape-based reverse-mode autodiff over a closed op set, a
//! tiny-Llama-style transformer encoder + two-layer MLP ([`model::M3Net`]),
//! the Adam optimizer, and a compact binary checkpoint format.
//!
//! The paper trains with PyTorch Lightning on four A100s; this crate
//! substitutes a CPU-only from-scratch implementation with identical
//! architecture and objective (per-percentile L1), at configurable scale
//! (see `ModelConfig::{repro_default, paper_scale}` and DESIGN.md).
//!
//! ```
//! use m3_nn::prelude::*;
//!
//! let cfg = ModelConfig { feat_dim: 10, spec_dim: 2, out_dim: 4, embed: 8,
//!     heads: 2, layers: 1, block: 4, ff_hidden: 8, mlp_hidden: 8 };
//! let net = M3Net::new(cfg, 7);
//! let out = net.predict(&SampleInput {
//!     fg: vec![0.5; 10],
//!     bg: vec![vec![0.1; 10], vec![0.2; 10]],
//!     spec: vec![0.0, 1.0],
//!     use_context: true,
//! });
//! assert_eq!(out.len(), 4);
//! ```

// Robustness policy: non-test library code must not unwrap/expect — errors
// either propagate as typed Results or use an explicitly justified panic.
// scripts/check.sh runs clippy with -D warnings, making these hard errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod checkpoint;
pub mod infer;
pub mod integrity;
pub mod model;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub mod prelude {
    pub use crate::arena::{ArenaPool, TensorArena};
    pub use crate::checkpoint::{load_file, save_file};
    pub use crate::infer::InferScratch;
    pub use crate::integrity::{
        checksum64, encode_record, scan_records, scan_records_lenient, CorruptFrame,
        LenientScanResult, ScanResult,
    };
    pub use crate::model::{
        batch_gradients, batch_gradients_pooled, grad_l2_norm, M3Net, ModelConfig, SampleInput,
    };
    pub use crate::optim::Adam;
    pub use crate::params::{Param, ParamId, ParamStore};
    pub use crate::tape::{Tape, Var};
    pub use crate::tensor::{Tensor, TensorError};
}
