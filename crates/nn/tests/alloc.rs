//! Steady-state allocation test: after one warmup call, a repeated batched
//! forward pass through [`M3Net::predict_batch_into`] must perform zero heap
//! allocations — every tensor comes from the warm [`InferScratch`] arena and
//! the output rows reuse their capacity.
//!
//! This file holds exactly one #[test] so no concurrent test thread can
//! allocate while the counter is armed.

use m3_nn::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn second_batched_forward_pass_allocates_nothing() {
    let cfg = ModelConfig {
        feat_dim: 12,
        spec_dim: 4,
        out_dim: 6,
        embed: 8,
        heads: 2,
        layers: 1,
        block: 8,
        ff_hidden: 8,
        mlp_hidden: 8,
    };
    let net = M3Net::new(cfg.clone(), 5);
    let samples: Vec<SampleInput> = (0..6)
        .map(|i| SampleInput {
            fg: (0..cfg.feat_dim).map(|j| 0.1 * (i + j) as f32).collect(),
            bg: (0..(i % 4))
                .map(|h| vec![0.05 * (h + 1) as f32; cfg.feat_dim])
                .collect(),
            spec: vec![0.2; cfg.spec_dim],
            use_context: i % 3 != 0,
        })
        .collect();

    let mut scratch = InferScratch::new();
    let mut out = Vec::new();
    // Warmup: populates the arena free lists and output capacities.
    net.predict_batch_into(&samples, &mut scratch, &mut out);
    let warm = out.clone();

    ARMED.store(true, Ordering::SeqCst);
    net.predict_batch_into(&samples, &mut scratch, &mut out);
    ARMED.store(false, Ordering::SeqCst);

    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "steady-state batched forward pass performed {count} heap allocations"
    );
    assert_eq!(warm, out, "warm rerun changed outputs");
}
