//! Property tests for the autograd engine: analytic gradients must match
//! central finite differences for randomly-shaped compositions, and model
//! outputs must be finite and deterministic for arbitrary inputs.

use m3_nn::prelude::*;
use proptest::prelude::*;

/// Build a random but well-conditioned input tensor.
fn tensor_from(vals: &[f32], rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| vals[i % vals.len()].clamp(-2.0, 2.0))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Values with plenty of exact zeros so the sparsity skip actually fires.
fn sparse_tensor_from(vals: &[f32], rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let v = vals[i % vals.len()];
            if (i / 3) % 2 == 0 {
                0.0
            } else {
                v.clamp(-2.0, 2.0)
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// d(loss)/d(W) for x->matmul->silu->matmul->L1 matches finite
    /// differences for random shapes and values.
    #[test]
    fn mlp_gradient_matches_finite_difference(
        rows in 1usize..4,
        inner in 1usize..6,
        out_w in 1usize..5,
        vals in prop::collection::vec(-1.0f32..1.0, 8..32),
    ) {
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(9);
        let w1 = store.add_xavier("w1", 3, inner, &mut rng);
        let w2 = store.add_xavier("w2", inner, out_w, &mut rng);
        let x = tensor_from(&vals, rows, 3);
        let t = tensor_from(&vals[1..], rows, out_w);
        let run = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new(store);
            let xv = tape.input(x.clone());
            let a = tape.param(w1);
            let b = tape.param(w2);
            let h = tape.matmul(xv, a);
            let h = tape.silu(h);
            let y = tape.matmul(h, b);
            let tv = tape.input(t.clone());
            let l = tape.l1_loss(y, tv);
            tape.value(l).data[0]
        };
        let mut grads = store.zero_grads();
        {
            let s = store.clone();
            let mut tape = Tape::new(&s);
            let xv = tape.input(x.clone());
            let a = tape.param(w1);
            let b = tape.param(w2);
            let h = tape.matmul(xv, a);
            let h = tape.silu(h);
            let y = tape.matmul(h, b);
            let tv = tape.input(t.clone());
            let l = tape.l1_loss(y, tv);
            tape.backward(l, &mut grads);
        }
        let eps = 1e-2f32;
        for pid in [w1, w2] {
            let n = store.get(pid).len();
            let i = n / 2;
            let orig = store.get(pid).data[i];
            store.get_mut(pid).data[i] = orig + eps;
            let plus = run(&store);
            store.get_mut(pid).data[i] = orig - eps;
            let minus = run(&store);
            store.get_mut(pid).data[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads[pid.0].data[i];
            // L1 has kinks; allow a loose bound plus an absolute floor.
            prop_assert!(
                (numeric - analytic).abs() <= 0.15 + 0.3 * numeric.abs().max(analytic.abs()),
                "param {:?} idx {}: numeric {} vs analytic {}", pid, i, numeric, analytic
            );
        }
    }

    /// The full m3 model produces finite, deterministic outputs for any
    /// input values and any hop count.
    #[test]
    fn model_total_function(
        hops in 0usize..8,
        fill in -3.0f32..3.0,
        spec_fill in 0.0f32..1.5,
    ) {
        let cfg = ModelConfig {
            feat_dim: 12,
            spec_dim: 4,
            out_dim: 6,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 8,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        let net = M3Net::new(cfg.clone(), 3);
        let sample = SampleInput {
            fg: vec![fill; cfg.feat_dim],
            bg: vec![vec![fill * 0.5; cfg.feat_dim]; hops],
            spec: vec![spec_fill; cfg.spec_dim],
            use_context: true,
        };
        let a = net.predict(&sample);
        let b = net.predict(&sample);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        prop_assert_eq!(a.len(), cfg.out_dim);
    }

    /// Batched inference equals the per-sample path bit for bit, for any
    /// batch size, mix of hop counts, and context ablation flags.
    #[test]
    fn predict_batch_matches_sequential_predict(
        hop_counts in prop::collection::vec(0usize..7, 0..9),
        fills in prop::collection::vec(-2.0f32..2.0, 1..8),
        no_ctx_stride in 1usize..4,
    ) {
        let cfg = ModelConfig {
            feat_dim: 12,
            spec_dim: 4,
            out_dim: 6,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 8,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        let net = M3Net::new(cfg.clone(), 5);
        let samples: Vec<SampleInput> = hop_counts
            .iter()
            .enumerate()
            .map(|(i, &hops)| {
                let fill = fills[i % fills.len()];
                SampleInput {
                    fg: (0..cfg.feat_dim).map(|j| fill + j as f32 * 0.01).collect(),
                    bg: (0..hops)
                        .map(|h| vec![fill * 0.5 - h as f32 * 0.02; cfg.feat_dim])
                        .collect(),
                    spec: vec![fill.abs().min(1.0); cfg.spec_dim],
                    use_context: i % no_ctx_stride != 0,
                }
            })
            .collect();
        let batched = net.predict_batch(&samples);
        prop_assert_eq!(batched.len(), samples.len());
        for (s, out) in samples.iter().zip(&batched) {
            let single = net.predict(s);
            let a: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// The cache-blocked matmul kernel is bit-identical to the retained
    /// scalar reference kernel across randomized shapes, for both dense and
    /// zero-heavy operands (the latter exercises the sparsity skip), with
    /// the skip both enabled and disabled.
    #[test]
    fn blocked_matmul_bit_identical_to_reference(
        n in 1usize..20,
        k in 1usize..34,
        m in 1usize..18,
        vals in prop::collection::vec(-3.0f32..3.0, 4..32),
        sparse in prop::bool::ANY,
    ) {
        let a = if sparse {
            sparse_tensor_from(&vals, n, k)
        } else {
            tensor_from(&vals, n, k)
        };
        let b = tensor_from(&vals[1..], k, m);
        let mut reference = Tensor::zeros(n, m);
        Tensor::matmul_into_reference(&a, &b, &mut reference);
        let mut blocked = Tensor::zeros(n, m);
        Tensor::matmul_into(&a, &b, &mut blocked);
        prop_assert_eq!(bits(&reference), bits(&blocked));
        // Disabling the sparsity skip must not change a single bit either
        // (the +-0.0 accumulator argument in tensor.rs).
        let mut dense = Tensor::zeros(n, m);
        Tensor::matmul_into_gated(&a, &b, &mut dense, false);
        prop_assert_eq!(bits(&blocked), bits(&dense));
    }

    /// The rows-slice kernel (batched context path, no stacking copy) is
    /// bit-identical to stacking the rows into a tensor and multiplying.
    #[test]
    fn rows_kernel_matches_stacked_matmul(
        n in 1usize..12,
        k in 1usize..20,
        m in 1usize..12,
        vals in prop::collection::vec(-2.0f32..2.0, 4..24),
        zero_skip in prop::bool::ANY,
    ) {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        let v = vals[(i * k + j) % vals.len()];
                        if (i + j) % 3 == 0 { 0.0 } else { v }
                    })
                    .collect()
            })
            .collect();
        let stacked = Tensor::from_vec(n, k, rows.concat());
        let b = tensor_from(&vals, k, m);
        let mut expect = Tensor::zeros(n, m);
        Tensor::matmul_into_gated(&stacked, &b, &mut expect, zero_skip);
        let mut got = Tensor::zeros(n, m);
        Tensor::matmul_rows_into_gated(&rows, &b, &mut got, zero_skip);
        prop_assert_eq!(bits(&expect), bits(&got));
    }

    /// The no-tape arena fast path produces bit-identical outputs to the
    /// retained tape-based reference forward pass, for any hop count and
    /// context ablation flag.
    #[test]
    fn fast_predict_matches_tape_reference(
        hops in 0usize..8,
        fill in -2.0f32..2.0,
        use_context in prop::bool::ANY,
        seed in 0u64..40,
    ) {
        let cfg = ModelConfig {
            feat_dim: 12,
            spec_dim: 4,
            out_dim: 6,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 8,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        let net = M3Net::new(cfg.clone(), seed);
        let sample = SampleInput {
            fg: (0..cfg.feat_dim).map(|j| fill + j as f32 * 0.03).collect(),
            bg: (0..hops)
                .map(|h| {
                    (0..cfg.feat_dim)
                        .map(|j| if j % 4 == 0 { 0.0 } else { fill * 0.5 - h as f32 * 0.02 })
                        .collect()
                })
                .collect(),
            spec: vec![fill.abs().min(1.0); cfg.spec_dim],
            use_context,
        };
        let fast = net.predict(&sample);
        let reference = net.predict_reference(&sample);
        let a: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Checkpoint roundtrips preserve every prediction bit-exactly.
    #[test]
    fn checkpoint_preserves_predictions(seed in 0u64..50, fill in -1.0f32..1.0) {
        let cfg = ModelConfig {
            feat_dim: 10,
            spec_dim: 3,
            out_dim: 4,
            embed: 8,
            heads: 2,
            layers: 1,
            block: 4,
            ff_hidden: 8,
            mlp_hidden: 8,
        };
        let net = M3Net::new(cfg.clone(), seed);
        let mut buf = Vec::new();
        m3_nn::checkpoint::save(&net, seed, &mut buf).unwrap();
        let loaded = m3_nn::checkpoint::load(&buf[..]).unwrap();
        let sample = SampleInput {
            fg: vec![fill; 10],
            bg: vec![vec![fill; 10]; 2],
            spec: vec![fill.abs(); 3],
            use_context: true,
        };
        prop_assert_eq!(net.predict(&sample), loaded.predict(&sample));
    }
}

/// Explicit edge shapes the blocked kernel must handle: 1x1, 1xk, kx1,
/// tall/skinny (rows far exceeding the 8-row tile), and a non-multiple of
/// the tile height. Each must match the reference kernel bit for bit.
#[test]
fn blocked_matmul_edge_shapes_match_reference() {
    let shapes = [
        (1, 1, 1),
        (1, 7, 1),
        (1, 1, 9),
        (1, 13, 5),
        (33, 2, 1),
        (40, 1, 3),
        (9, 3, 2),
        (8, 8, 8),
        (17, 5, 4),
    ];
    for (n, k, m) in shapes {
        let a = Tensor::from_vec(
            n,
            k,
            (0..n * k)
                .map(|i| if i % 3 == 0 { 0.0 } else { (i as f32).sin() })
                .collect(),
        );
        let b = Tensor::from_vec(k, m, (0..k * m).map(|i| (i as f32 * 0.7).cos()).collect());
        let mut reference = Tensor::zeros(n, m);
        Tensor::matmul_into_reference(&a, &b, &mut reference);
        let mut blocked = Tensor::zeros(n, m);
        Tensor::matmul_into(&a, &b, &mut blocked);
        let rb: Vec<u32> = reference.data.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = blocked.data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(rb, bb, "shape ({n},{k},{m}) diverged");
    }
}

/// A NaN anywhere in the weight operand forces both kernels dense, and they
/// agree bit for bit on the poisoned output — including which outputs went
/// non-finite.
#[test]
fn blocked_and_reference_agree_under_nan_poison() {
    let n = 11;
    let k = 6;
    let m = 5;
    let a = Tensor::from_vec(
        n,
        k,
        (0..n * k)
            .map(|i| if i % 2 == 0 { 0.0 } else { i as f32 * 0.1 })
            .collect(),
    );
    let mut b = Tensor::from_vec(k, m, vec![0.25; k * m]);
    b.data[7] = f32::NAN;
    let mut reference = Tensor::zeros(n, m);
    Tensor::matmul_into_reference(&a, &b, &mut reference);
    let mut blocked = Tensor::zeros(n, m);
    Tensor::matmul_into(&a, &b, &mut blocked);
    assert!(reference.data.iter().any(|v| v.is_nan()));
    let rb: Vec<u32> = reference.data.iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = blocked.data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(rb, bb);
}
