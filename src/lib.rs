//! # m3 — reproduction workspace root
//!
//! Re-exports every crate of the m3 (SIGCOMM 2024) reproduction under one
//! roof, for use by the examples, the integration tests, and the `m3` CLI:
//!
//! * [`telemetry`] — metrics registry, spans, versioned JSON snapshots
//! * [`netsim`] — packet-level discrete-event simulator (ground truth)
//! * [`flowsim`] — max-min fluid simulator (flowSim, Algorithm 1)
//! * [`workload`] — size distributions, traffic matrices, arrivals
//! * [`nn`] — tensors, autograd, transformer + MLP, Adam, checkpoints
//! * [`core`] — the m3 pipeline (decompose, featurize, correct, aggregate)
//! * [`serve`] — supervised estimation service (job queue, journal, breakers)
//! * [`parsimon`] — the Parsimon baseline
//!
//! See README.md for a quickstart and DESIGN.md for the architecture.

pub use m3_core as core;
pub use m3_flowsim as flowsim;
pub use m3_netsim as netsim;
pub use m3_nn as nn;
pub use m3_parsimon as parsimon;
pub use m3_serve as serve;
pub use m3_telemetry as telemetry;
pub use m3_workload as workload;
