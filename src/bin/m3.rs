//! `m3` — command-line interface to the estimation pipeline.
//!
//! ```text
//! m3 example-spec                # print a scenario spec template (JSON)
//! m3 estimate <spec.json>       # run the estimators named in the spec
//! m3 sweep <spec.json> <knob> <v1,v2,...>   # counterfactual knob sweep
//! ```
//!
//! The spec file describes a topology, a workload, a network configuration,
//! and which estimators to run (`m3`, `flowsim`, `global-flowsim`,
//! `parsimon`, `parsimon-clustered`, `ns3`, `ns3-path`).

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::parsimon::{
    parsimon_estimate, parsimon_estimate_clustered, slowdown_samples, ClusteringConfig,
};
use m3::workload::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Debug, Serialize, Deserialize)]
struct Spec {
    topology: TopoSpec,
    workload: WorkloadSpec,
    #[serde(default)]
    config: ConfigSpec,
    /// Estimators to run.
    methods: Vec<String>,
    #[serde(default = "default_paths")]
    paths: usize,
    #[serde(default)]
    model: Option<String>,
    #[serde(default)]
    seed: u64,
}

fn default_paths() -> usize {
    100
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum TopoSpec {
    FatTreeSmall { oversub: usize },
    FatTreeLarge,
}

#[derive(Debug, Serialize, Deserialize)]
struct WorkloadSpec {
    n_flows: usize,
    matrix: String,
    sizes: String,
    sigma: f64,
    max_load: f64,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct ConfigSpec {
    #[serde(default)]
    cc: Option<String>,
    #[serde(default)]
    init_window: Option<u64>,
    #[serde(default)]
    buffer_size: Option<u64>,
    #[serde(default)]
    pfc: Option<bool>,
}

impl ConfigSpec {
    fn to_sim_config(&self) -> SimConfig {
        let mut c = SimConfig::default();
        if let Some(cc) = &self.cc {
            c.cc = match cc.as_str() {
                "dctcp" => CcProtocol::Dctcp,
                "timely" => CcProtocol::Timely,
                "dcqcn" => CcProtocol::Dcqcn,
                "hpcc" => CcProtocol::Hpcc,
                other => die(&format!("unknown cc protocol {other:?}")),
            };
        }
        if let Some(w) = self.init_window {
            c.init_window = w;
        }
        if let Some(b) = self.buffer_size {
            c.buffer_size = b;
        }
        if let Some(p) = self.pfc {
            c.pfc_enabled = p;
        }
        c
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn example_spec() -> Spec {
    Spec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows: 20_000,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.5,
        },
        config: ConfigSpec {
            cc: Some("dctcp".into()),
            init_window: Some(15_000),
            buffer_size: Some(400_000),
            pfc: Some(false),
        },
        methods: vec!["m3".into(), "parsimon".into(), "ns3".into()],
        paths: 100,
        model: Some("assets/m3-model.ckpt".into()),
        seed: 1,
    }
}

struct Materialized {
    topo: Topology,
    flows: Vec<FlowSpec>,
    config: SimConfig,
}

fn materialize(spec: &Spec) -> Materialized {
    let ft = match spec.topology {
        TopoSpec::FatTreeSmall { oversub } => FatTree::build(FatTreeSpec::small(oversub)),
        TopoSpec::FatTreeLarge => FatTree::build(FatTreeSpec::large()),
    };
    let routing = Routing::new(&ft.topo);
    let sizes = SizeDistribution::by_name(&spec.workload.sizes).unwrap_or_else(|| {
        die(&format!(
            "unknown size distribution {:?}",
            spec.workload.sizes
        ))
    });
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: spec.workload.n_flows,
            matrix_name: spec.workload.matrix.clone(),
            sizes,
            sigma: spec.workload.sigma,
            max_load: spec.workload.max_load,
            seed: spec.seed,
        },
    );
    Materialized {
        topo: ft.topo,
        flows: w.flows,
        config: spec.config.to_sim_config(),
    }
}

fn load_model(spec: &Spec) -> m3::nn::prelude::M3Net {
    let path = spec.model.as_deref().unwrap_or("assets/m3-model.ckpt");
    m3::nn::checkpoint::load_file(path).unwrap_or_else(|e| {
        die(&format!(
            "cannot load model {path:?} ({e}); run `cargo run --release -p m3-bench --bin train` first"
        ))
    })
}

fn report(name: &str, est: &NetworkEstimate, elapsed: std::time::Duration) {
    println!(
        "{name:>18}: p99 {:>8.2}   (p50 {:>6.2}, buckets p99 [{:.2}, {:.2}, {:.2}, {:.2}])   {:?}",
        est.p99(),
        est.overall_quantile(50.0),
        est.bucket_p99(0),
        est.bucket_p99(1),
        est.bucket_p99(2),
        est.bucket_p99(3),
        elapsed
    );
    let deg = &est.degradation;
    if !deg.is_clean() {
        eprintln!(
            "{:>18}  warning: degraded estimate — {}/{} samples fell back to \
             flowSim, {}/{} dropped ({} fault event(s))",
            "",
            deg.degraded_samples,
            deg.total_samples,
            deg.dropped_samples,
            deg.total_samples,
            deg.events.len()
        );
        for ev in &deg.events {
            eprintln!(
                "{:>18}    [{}/{}] scenario {}: {}",
                "", ev.stage, ev.fault, ev.scenario, ev.detail
            );
        }
    }
}

fn run_estimate(spec: &Spec) {
    let m = materialize(spec);
    println!(
        "scenario: {} flows, {} nodes, {} links",
        m.flows.len(),
        m.topo.node_count(),
        m.topo.link_count()
    );
    for method in &spec.methods {
        let t = Instant::now();
        match method.as_str() {
            "m3" => {
                let est = M3Estimator::new(load_model(spec));
                let e = est
                    .try_estimate(
                        &m.topo,
                        &m.flows,
                        &m.config,
                        spec.paths,
                        spec.seed,
                        &EstimateOptions::default(),
                    )
                    .unwrap_or_else(|e| die(&e.to_string()));
                report("m3", &e, t.elapsed());
            }
            "flowsim" => {
                let e = flowsim_estimate(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
                report("flowsim", &e, t.elapsed());
            }
            "global-flowsim" => {
                let e = global_flowsim_estimate(&m.topo, &m.flows, &m.config);
                report("global-flowsim", &e, t.elapsed());
            }
            "parsimon" => {
                let recs = parsimon_estimate(&m.topo, &m.flows, &m.config);
                let e = NetworkEstimate::aggregate(&[PathDistribution::from_samples(
                    &slowdown_samples(&recs),
                )]);
                report("parsimon", &e, t.elapsed());
            }
            "parsimon-clustered" => {
                let (recs, stats) = parsimon_estimate_clustered(
                    &m.topo,
                    &m.flows,
                    &m.config,
                    &ClusteringConfig::default(),
                );
                let e = NetworkEstimate::aggregate(&[PathDistribution::from_samples(
                    &slowdown_samples(&recs),
                )]);
                report("parsimon-clustered", &e, t.elapsed());
                println!(
                    "{:>18}  ({} of {} channels simulated)",
                    "", stats.simulated_channels, stats.total_channels
                );
            }
            "ns3" => {
                let out = run_simulation(&m.topo, m.config, m.flows.clone());
                let e = ground_truth_estimate(&out.records);
                report("ns3 (packet sim)", &e, t.elapsed());
            }
            "ns3-path" => {
                let e = ns3_path_estimate(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
                report("ns3-path", &e, t.elapsed());
            }
            other => die(&format!("unknown method {other:?}")),
        }
    }
}

fn run_sweep(spec: &Spec, knob_name: &str, values: &str) {
    let knob = match knob_name {
        "init-window" => Knob::InitWindow,
        "buffer-size" => Knob::BufferSize,
        "dctcp-k" => Knob::DctcpK,
        "hpcc-eta" => Knob::HpccEta,
        "hpcc-rate-ai" => Knob::HpccRateAi,
        "timely-tlow" => Knob::TimelyTLow,
        "timely-thigh" => Knob::TimelyTHigh,
        other => die(&format!("unknown knob {other:?}")),
    };
    let candidates: Vec<f64> = values
        .split(',')
        .map(|v| v.trim().parse().unwrap_or_else(|_| die("bad knob value")))
        .collect();
    let m = materialize(spec);
    let estimator = M3Estimator::new(load_model(spec));
    let t = Instant::now();
    let prepared = PreparedWorkload::prepare(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
    println!("prepared {} paths in {:?}", spec.paths, t.elapsed());
    let t = Instant::now();
    let result = sweep_knob(&estimator, &prepared, &m.config, knob, &candidates, |e| {
        e.p99()
    });
    println!(
        "swept {} candidates in {:?}:",
        candidates.len(),
        t.elapsed()
    );
    for p in &result.points {
        println!(
            "  {knob_name} = {:>12.1}: overall p99 {:>7.2}, buckets [{:.2}, {:.2}, {:.2}, {:.2}]",
            p.value,
            p.overall_p99,
            p.bucket_p99[0],
            p.bucket_p99[1],
            p.bucket_p99[2],
            p.bucket_p99[3]
        );
    }
    println!(
        "best: {knob_name} = {:.1} (p99 {:.2})",
        result.best.value, result.best.overall_p99
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(|s| s.as_str()) {
        Some("example-spec") => {
            println!("{}", serde_json::to_string_pretty(&example_spec()).unwrap());
        }
        Some("estimate") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die("usage: m3 estimate <spec.json>"));
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
            let spec: Spec =
                serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
            run_estimate(&spec);
        }
        Some("sweep") => {
            if args.len() < 5 {
                die("usage: m3 sweep <spec.json> <knob> <v1,v2,...>");
            }
            let text = std::fs::read_to_string(&args[2])
                .unwrap_or_else(|e| die(&format!("read {}: {e}", args[2])));
            let spec: Spec = serde_json::from_str(&text)
                .unwrap_or_else(|e| die(&format!("parse {}: {e}", args[2])));
            run_sweep(&spec, &args[3], &args[4]);
        }
        _ => {
            eprintln!("usage: m3 <example-spec | estimate <spec.json> | sweep <spec.json> <knob> <values>>");
            std::process::exit(2);
        }
    }
}
