//! `m3` — command-line interface to the estimation pipeline.
//!
//! ```text
//! m3 example-spec                # print a scenario spec template (JSON)
//! m3 estimate <spec.json>       # run the estimators named in the spec
//! m3 sweep <spec.json> <knob> <v1,v2,...>   # counterfactual knob sweep
//! m3 example-service-spec        # print a service spec template (JSON)
//! m3 serve <service.json>       # run a batch through the supervised service
//! m3 example-cluster-spec        # print a cluster spec template (JSON)
//! m3 cluster <cluster.json>     # fan a batch out across sharded services
//! m3 example-train-spec          # print a training spec template (JSON)
//! m3 train <train.json>         # train a model and save a checkpoint
//! m3 stats <snapshot.json>      # pretty-print a metrics snapshot
//! m3 trace <trace.json>         # summarize an exported trace file
//! ```
//!
//! `estimate`, `serve`, and `train` accept `--metrics-out <path>`: a
//! versioned JSON telemetry snapshot (counters, gauges, stage timers,
//! latency histograms) is written there — continuously by `serve`, at exit
//! by the others — and can be inspected with `m3 stats`.
//!
//! `estimate` and `serve` also accept `--trace-out <path>`: the run is
//! recorded by the causal-tracing flight recorder and exported as Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`), containing
//! the pipeline's span tree, degradation/fault/cache instants, and
//! per-link simulator counter tracks. `--trace-stride-ns <ns>` sets the
//! virtual-time probe sampling stride; `--trace-deterministic` zeroes the
//! wall-clock fields so traces of a fixed seed are byte-identical (the
//! golden-file mode used by `scripts/check.sh`). Inspect exported files
//! with `m3 trace`.
//!
//! The spec file describes a topology, a workload, a network configuration,
//! and which estimators to run (`m3`, `flowsim`, `global-flowsim`,
//! `parsimon`, `parsimon-clustered`, `ns3`, `ns3-path`). The service spec
//! adds a journal path and a list of requests; a `m3 serve` run that is
//! killed can be re-run with `"resume": true` to replay the journal and
//! finish exactly the jobs that had not settled.
//!
//! `m3 cluster` runs the same kind of batch through the fault-tolerant
//! sharded coordinator (`m3_serve::cluster`): requests are spread across
//! `shards` independent service instances by rendezvous hashing, each with
//! its own journal under `journal_dir`, and a dead or stalled shard's
//! unfinished work is rerouted losslessly to the survivors. With
//! `--metrics-out <path>` the deterministic merge of every shard's
//! telemetry (plus the coordinator's own counters) is written at exit.
//!
//! Exit codes distinguish failure families:
//! * 2 — usage errors (bad arguments, unreadable/unparsable files)
//! * 3 — spec validation errors (unknown method/knob/matrix/protocol, ...)
//! * 4 — runtime faults (stage faults, degradation limits, missing model)

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::parsimon::{
    parsimon_estimate, parsimon_estimate_clustered, slowdown_samples, ClusteringConfig,
};
use m3::serve::prelude::{
    Cluster, ClusterConfig, ConfigSpec, EstimateRequest, JobOutcome, RetryPolicy, ScenarioSpec,
    Service, ServiceConfig, SubmitError, TopoSpec, WorkloadSpec,
};
use m3::telemetry::{
    render_snapshot, render_trace_summary, summarize_chrome_json, MetricsRegistry, MetricsSnapshot,
    TraceCtx, TraceRecorder, DEFAULT_TRACE_CAPACITY,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Bad command line / unreadable input.
const EXIT_USAGE: i32 = 2;
/// The spec failed validation (typed `M3Error::InvalidSpec`).
const EXIT_SPEC: i32 = 3;
/// The pipeline faulted at runtime (any other `M3Error`, missing model,
/// failed service jobs).
const EXIT_FAULT: i32 = 4;

#[derive(Debug, Serialize, Deserialize)]
struct Spec {
    topology: TopoSpec,
    workload: WorkloadSpec,
    #[serde(default)]
    config: ConfigSpec,
    /// Estimators to run.
    methods: Vec<String>,
    #[serde(default = "default_paths")]
    paths: usize,
    #[serde(default)]
    model: Option<String>,
    #[serde(default)]
    seed: u64,
}

impl Spec {
    fn scenario(&self) -> ScenarioSpec {
        ScenarioSpec {
            topology: self.topology.clone(),
            workload: self.workload.clone(),
            config: self.config.clone(),
        }
    }
}

fn default_paths() -> usize {
    100
}

/// Input to `m3 serve`: service knobs plus a batch of requests.
#[derive(Debug, Serialize, Deserialize)]
struct ServiceSpec {
    #[serde(default = "default_workers")]
    workers: usize,
    #[serde(default = "default_queue_capacity")]
    queue_capacity: usize,
    /// Write-ahead journal path; omit to run without crash recovery.
    #[serde(default)]
    journal: Option<String>,
    /// Re-open an existing journal and finish its pending jobs before
    /// submitting any requests it has not seen yet.
    #[serde(default)]
    resume: bool,
    #[serde(default)]
    model: Option<String>,
    #[serde(default)]
    retry: Option<RetryPolicy>,
    requests: Vec<EstimateRequest>,
}

fn default_workers() -> usize {
    2
}

fn default_queue_capacity() -> usize {
    64
}

/// Input to `m3 cluster`: coordinator knobs plus a batch of requests that
/// is fanned out across `shards` independent service instances.
#[derive(Debug, Serialize, Deserialize)]
struct ClusterSpec {
    #[serde(default = "default_shards")]
    shards: usize,
    /// Workers *per shard*.
    #[serde(default = "default_shard_workers")]
    workers: usize,
    #[serde(default = "default_queue_capacity")]
    queue_capacity: usize,
    /// Directory for per-shard journals (`shard-<i>.jrn`); omit to run
    /// without crash recovery.
    #[serde(default)]
    journal_dir: Option<String>,
    #[serde(default)]
    model: Option<String>,
    /// Per-shard (within-service) retry policy.
    #[serde(default)]
    retry: Option<RetryPolicy>,
    /// Requests with at least this many paths are scattered into
    /// path-slice children that run on multiple shards; omit to disable.
    #[serde(default)]
    scatter_threshold: Option<usize>,
    #[serde(default = "default_scatter_chunk")]
    scatter_chunk: usize,
    requests: Vec<EstimateRequest>,
}

fn default_shards() -> usize {
    4
}

fn default_shard_workers() -> usize {
    1
}

fn default_scatter_chunk() -> usize {
    8
}

fn die(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code);
}

/// Remove `--<flag> <value>` from `args` and return the value, if present.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        die(EXIT_USAGE, &format!("{flag} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Remove a bare `--<flag>` from `args`, returning whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Causal-tracing options shared by `estimate` and `serve`
/// (`--trace-out <path>` plus its modifier flags).
struct TraceOpts {
    out: String,
    stride_ns: u64,
    deterministic: bool,
}

impl TraceOpts {
    fn from_args(args: &mut Vec<String>) -> Option<TraceOpts> {
        let stride_ns = take_flag_value(args, "--trace-stride-ns")
            .map(|v| {
                v.parse::<u64>().unwrap_or_else(|_| {
                    die(EXIT_USAGE, &format!("bad --trace-stride-ns value {v:?}"))
                })
            })
            .unwrap_or(0);
        let deterministic = take_flag(args, "--trace-deterministic");
        match take_flag_value(args, "--trace-out") {
            Some(out) => Some(TraceOpts {
                out,
                stride_ns,
                deterministic,
            }),
            None if stride_ns != 0 || deterministic => die(
                EXIT_USAGE,
                "--trace-stride-ns / --trace-deterministic require --trace-out",
            ),
            None => None,
        }
    }

    fn recorder(&self) -> TraceRecorder {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }

    /// Snapshot `recorder` and write it as Chrome trace-event JSON
    /// (deterministic view when `--trace-deterministic` was given).
    fn write(&self, recorder: &TraceRecorder) {
        let rec = recorder.snapshot();
        let json = if self.deterministic {
            rec.to_chrome_deterministic_json()
        } else {
            rec.to_chrome_json()
        };
        if let Err(e) = std::fs::write(&self.out, json) {
            eprintln!("warning: cannot write trace {}: {e}", self.out);
        } else {
            let dropped = if rec.dropped > 0 {
                format!(", {} dropped", rec.dropped)
            } else {
                String::new()
            };
            println!(
                "trace written to {} ({} events{dropped}); open at https://ui.perfetto.dev",
                self.out,
                rec.events.len()
            );
        }
    }
}

/// Write a metrics snapshot as JSON, best-effort with a visible warning.
fn write_snapshot(path: &str, snap: &MetricsSnapshot) {
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("warning: cannot write metrics snapshot {path}: {e}");
    }
}

/// Route a typed pipeline error to the right exit family.
fn die_m3(e: &M3Error) -> ! {
    let code = match e {
        M3Error::InvalidSpec { .. } => EXIT_SPEC,
        _ => EXIT_FAULT,
    };
    die(code, &e.to_string())
}

fn invalid_spec(reason: String) -> M3Error {
    M3Error::InvalidSpec {
        stage: Stage::Validate,
        reason,
    }
}

fn example_spec() -> Spec {
    Spec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows: 20_000,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.5,
        },
        config: ConfigSpec {
            cc: Some("dctcp".into()),
            init_window: Some(15_000),
            buffer_size: Some(400_000),
            pfc: Some(false),
        },
        methods: vec!["m3".into(), "parsimon".into(), "ns3".into()],
        paths: 100,
        model: Some("assets/m3-model.ckpt".into()),
        seed: 1,
    }
}

fn example_service_spec() -> ServiceSpec {
    let scenario = example_spec().scenario();
    let mut second = EstimateRequest::new(scenario.clone(), 100, 2);
    second.deadline_ms = Some(120_000);
    ServiceSpec {
        workers: 2,
        queue_capacity: 64,
        journal: Some("m3-serve.journal".into()),
        resume: false,
        model: Some("assets/m3-model.ckpt".into()),
        retry: Some(RetryPolicy::default()),
        requests: vec![EstimateRequest::new(scenario, 100, 1), second],
    }
}

fn example_cluster_spec() -> ClusterSpec {
    let scenario = example_spec().scenario();
    ClusterSpec {
        shards: 4,
        workers: 1,
        queue_capacity: 64,
        journal_dir: Some("m3-cluster-journal".into()),
        model: Some("assets/m3-model.ckpt".into()),
        retry: Some(RetryPolicy::default()),
        scatter_threshold: Some(64),
        scatter_chunk: 32,
        requests: vec![
            EstimateRequest::new(scenario.clone(), 100, 1),
            EstimateRequest::new(scenario, 100, 2),
        ],
    }
}

struct Materialized {
    topo: Topology,
    flows: Vec<FlowSpec>,
    config: SimConfig,
}

fn materialize(spec: &Spec) -> Materialized {
    let (topo, flows, config) = spec
        .scenario()
        .materialize(spec.seed)
        .unwrap_or_else(|e| die_m3(&e));
    Materialized {
        topo,
        flows,
        config,
    }
}

fn load_model(path: Option<&str>) -> m3::nn::prelude::M3Net {
    let path = path.unwrap_or("assets/m3-model.ckpt");
    m3::nn::checkpoint::load_file(path).unwrap_or_else(|e| {
        die(
            EXIT_FAULT,
            &format!(
                "cannot load model {path:?} ({e}); run `cargo run --release -p m3-bench --bin train` first"
            ),
        )
    })
}

fn report(name: &str, est: &NetworkEstimate, elapsed: std::time::Duration) {
    println!(
        "{name:>18}: p99 {:>8.2}   (p50 {:>6.2}, buckets p99 [{:.2}, {:.2}, {:.2}, {:.2}])   {:?}",
        est.p99(),
        est.overall_quantile(50.0),
        est.bucket_p99(0),
        est.bucket_p99(1),
        est.bucket_p99(2),
        est.bucket_p99(3),
        elapsed
    );
    let deg = &est.degradation;
    if !deg.is_clean() {
        eprintln!(
            "{:>18}  warning: degraded estimate — {}/{} samples fell back to \
             flowSim, {}/{} dropped ({} fault event(s))",
            "",
            deg.degraded_samples,
            deg.total_samples,
            deg.dropped_samples,
            deg.total_samples,
            deg.events.len()
        );
        for ev in &deg.events {
            eprintln!(
                "{:>18}    [{}/{}] scenario {}: {}",
                "", ev.stage, ev.fault, ev.scenario, ev.detail
            );
        }
    }
}

fn run_estimate(spec: &Spec, metrics_out: Option<&str>, trace: Option<&TraceOpts>) {
    let m = materialize(spec);
    println!(
        "scenario: {} flows, {} nodes, {} links",
        m.flows.len(),
        m.topo.node_count(),
        m.topo.link_count()
    );
    // One registry across every method: the m3 pipeline absorbs its
    // per-call metrics into it, and the packet simulator records its
    // event/mark/drop counters directly.
    let registry = if metrics_out.is_some() {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::noop()
    };
    // Likewise one flight recorder (trace id 1) across every method; the
    // noop recorder keeps the trace plumbing free when --trace-out is off.
    let recorder = trace
        .map(|t| t.recorder())
        .unwrap_or_else(TraceRecorder::noop);
    let mut tctx = TraceCtx::new(recorder.clone(), 1);
    if let Some(t) = trace {
        tctx.probe_stride_ns = t.stride_ns;
    }
    for method in &spec.methods {
        let t = Instant::now();
        match method.as_str() {
            "m3" => {
                let est = M3Estimator::new(load_model(spec.model.as_deref()));
                let e = est
                    .try_estimate(
                        &m.topo,
                        &m.flows,
                        &m.config,
                        spec.paths,
                        spec.seed,
                        &EstimateOptions {
                            metrics: Some(registry.clone()),
                            trace: tctx.clone(),
                            ..EstimateOptions::default()
                        },
                    )
                    .unwrap_or_else(|e| die_m3(&e));
                report("m3", &e, t.elapsed());
            }
            "flowsim" => {
                let e = flowsim_estimate(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
                report("flowsim", &e, t.elapsed());
            }
            "global-flowsim" => {
                let e = global_flowsim_estimate(&m.topo, &m.flows, &m.config);
                report("global-flowsim", &e, t.elapsed());
            }
            "parsimon" => {
                let recs = parsimon_estimate(&m.topo, &m.flows, &m.config);
                let e = NetworkEstimate::aggregate(&[PathDistribution::from_samples(
                    &slowdown_samples(&recs),
                )]);
                report("parsimon", &e, t.elapsed());
            }
            "parsimon-clustered" => {
                let (recs, stats) = parsimon_estimate_clustered(
                    &m.topo,
                    &m.flows,
                    &m.config,
                    &ClusteringConfig::default(),
                );
                let e = NetworkEstimate::aggregate(&[PathDistribution::from_samples(
                    &slowdown_samples(&recs),
                )]);
                report("parsimon-clustered", &e, t.elapsed());
                println!(
                    "{:>18}  ({} of {} channels simulated)",
                    "", stats.simulated_channels, stats.total_channels
                );
            }
            "ns3" => {
                let mut sim = Simulator::new(&m.topo, m.config, m.flows.clone());
                if tctx.is_enabled() {
                    // Per-link queue/utilization/mark counter tracks,
                    // sampled over virtual time.
                    sim.set_trace_probe(tctx.root("ns3"), tctx.stride_ns());
                }
                let out = sim.run();
                out.record_into(&registry);
                let e = ground_truth_estimate(&out.records);
                report("ns3 (packet sim)", &e, t.elapsed());
            }
            "ns3-path" => {
                let e = ns3_path_estimate(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
                report("ns3-path", &e, t.elapsed());
            }
            other => die_m3(&invalid_spec(format!("unknown method {other:?}"))),
        }
    }
    if let Some(path) = metrics_out {
        write_snapshot(path, &registry.snapshot());
        println!("metrics snapshot written to {path}");
    }
    if let Some(t) = trace {
        t.write(&recorder);
    }
}

fn run_sweep(spec: &Spec, knob_name: &str, values: &str) {
    let knob = match knob_name {
        "init-window" => Knob::InitWindow,
        "buffer-size" => Knob::BufferSize,
        "dctcp-k" => Knob::DctcpK,
        "hpcc-eta" => Knob::HpccEta,
        "hpcc-rate-ai" => Knob::HpccRateAi,
        "timely-tlow" => Knob::TimelyTLow,
        "timely-thigh" => Knob::TimelyTHigh,
        other => die_m3(&invalid_spec(format!("unknown knob {other:?}"))),
    };
    let candidates: Vec<f64> = values
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| die(EXIT_USAGE, &format!("bad knob value {v:?}")))
        })
        .collect();
    let m = materialize(spec);
    let estimator = M3Estimator::new(load_model(spec.model.as_deref()));
    let t = Instant::now();
    let prepared = PreparedWorkload::prepare(&m.topo, &m.flows, &m.config, spec.paths, spec.seed);
    println!("prepared {} paths in {:?}", spec.paths, t.elapsed());
    let t = Instant::now();
    let result = sweep_knob(&estimator, &prepared, &m.config, knob, &candidates, |e| {
        e.p99()
    });
    println!(
        "swept {} candidates in {:?}:",
        candidates.len(),
        t.elapsed()
    );
    for p in &result.points {
        println!(
            "  {knob_name} = {:>12.1}: overall p99 {:>7.2}, buckets [{:.2}, {:.2}, {:.2}, {:.2}]",
            p.value,
            p.overall_p99,
            p.bucket_p99[0],
            p.bucket_p99[1],
            p.bucket_p99[2],
            p.bucket_p99[3]
        );
    }
    println!(
        "best: {knob_name} = {:.1} (p99 {:.2})",
        result.best.value, result.best.overall_p99
    );
}

fn run_serve(spec: &ServiceSpec, metrics_out: Option<&str>, trace: Option<&TraceOpts>) {
    // Validate every request's scenario up front so a typo'd batch dies
    // with a spec error before any job is journaled.
    for (i, req) in spec.requests.iter().enumerate() {
        if let Err(e) = req.scenario.materialize(req.seed) {
            eprintln!("error: request {i} is invalid");
            die_m3(&e);
        }
    }

    let estimator = M3Estimator::new(load_model(spec.model.as_deref()));
    let recorder = trace
        .map(|t| t.recorder())
        .unwrap_or_else(TraceRecorder::noop);
    let config = ServiceConfig {
        workers: spec.workers,
        queue_capacity: spec.queue_capacity,
        retry: spec.retry.unwrap_or_default(),
        metrics_out: metrics_out.map(Into::into),
        trace: recorder.clone(),
        trace_stride_ns: trace.map(|t| t.stride_ns).unwrap_or(0),
        ..ServiceConfig::default()
    };

    let (svc, already_accepted) = match (&spec.journal, spec.resume) {
        (Some(path), true) => {
            let (svc, replay) = Service::resume(estimator, config, path)
                .unwrap_or_else(|e| die(EXIT_USAGE, &format!("resume journal {path}: {e}")));
            println!(
                "resumed journal {path}: {} accepted, {} settled, {} pending{}",
                replay.accepted.len(),
                replay.terminal.len(),
                replay.pending().len(),
                if replay.truncated_tail {
                    " (torn tail truncated)"
                } else {
                    ""
                }
            );
            (svc, replay.accepted.len())
        }
        (Some(path), false) => (
            Service::start_journaled(estimator, config, path)
                .unwrap_or_else(|e| die(EXIT_USAGE, &format!("create journal {path}: {e}"))),
            0,
        ),
        (None, true) => die(EXIT_USAGE, "\"resume\": true requires a \"journal\" path"),
        (None, false) => (Service::start(estimator, config), 0),
    };

    // On resume, requests the journal already accepted are not re-submitted
    // (they either settled or are being replayed); only the tail of the
    // batch is new work.
    let mut ids = Vec::new();
    for (i, req) in spec.requests.iter().enumerate().skip(already_accepted) {
        match svc.submit(req.clone()) {
            Ok(id) => ids.push(id),
            Err(SubmitError::QueueFull { capacity }) => {
                eprintln!("request {i}: shed at submit (queue full, {capacity} slots)");
            }
            Err(e) => die(EXIT_FAULT, &format!("request {i}: {e}")),
        }
    }

    if !svc.wait_idle(Duration::from_secs(3600)) {
        die(EXIT_FAULT, "service did not settle all jobs within 1 h");
    }
    let stats = svc.stats();

    let mut failed = 0u64;
    for id in 0..stats.accepted {
        match svc.outcome(id) {
            Some(JobOutcome::Completed { estimate, attempts }) => {
                let took = Duration::from_secs_f64(estimate.timings.total_s());
                report(&format!("job {id} ({attempts} att)"), &estimate, took);
            }
            Some(JobOutcome::Degraded {
                estimate,
                attempts,
                via_breaker,
            }) => {
                let took = Duration::from_secs_f64(estimate.timings.total_s());
                report(&format!("job {id} ({attempts} att)"), &estimate, took);
                println!(
                    "{:>18}  degraded{}",
                    "",
                    if via_breaker {
                        " via open circuit breaker (flowSim-only path)"
                    } else {
                        ""
                    }
                );
            }
            Some(JobOutcome::Failed { error, attempts }) => {
                eprintln!("job {id}: FAILED after {attempts} attempt(s): {error}");
                failed += 1;
            }
            Some(JobOutcome::Shed { reason }) => {
                eprintln!("job {id}: shed ({reason})");
            }
            None => {
                eprintln!("job {id}: no terminal outcome (service bug)");
                failed += 1;
            }
        }
    }

    svc.shutdown();
    match serde_json::to_string_pretty(&stats) {
        Ok(s) => println!("{s}"),
        Err(e) => eprintln!("stats serialization failed: {e}"),
    }
    if let Some(path) = metrics_out {
        println!("metrics snapshot written to {path}");
    }
    if let Some(t) = trace {
        t.write(&recorder);
    }
    if failed > 0 {
        die(EXIT_FAULT, &format!("{failed} job(s) failed"));
    }
}

fn run_cluster(spec: &ClusterSpec, metrics_out: Option<&str>) {
    if spec.shards == 0 {
        die(EXIT_USAGE, "\"shards\" must be at least 1");
    }
    for (i, req) in spec.requests.iter().enumerate() {
        if let Err(e) = req.scenario.materialize(req.seed) {
            eprintln!("error: request {i} is invalid");
            die_m3(&e);
        }
    }

    let config = ClusterConfig {
        shards: spec.shards,
        shard: ServiceConfig {
            workers: spec.workers,
            queue_capacity: spec.queue_capacity,
            retry: spec.retry.unwrap_or_default(),
            ..ServiceConfig::default()
        },
        journal_dir: spec.journal_dir.as_ref().map(Into::into),
        scatter_threshold: spec.scatter_threshold.unwrap_or(usize::MAX),
        scatter_chunk: spec.scatter_chunk.max(1),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(load_model(spec.model.as_deref()), config)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("start cluster: {e}")));

    let mut ids = Vec::new();
    for (i, req) in spec.requests.iter().enumerate() {
        match cluster.submit(req.clone()) {
            Ok(id) => ids.push(id),
            Err(SubmitError::QueueFull { capacity }) => {
                eprintln!("request {i}: shed at submit (queue full, {capacity} slots)");
            }
            Err(e) => die(EXIT_FAULT, &format!("request {i}: {e}")),
        }
    }

    if !cluster.wait_idle(Duration::from_secs(3600)) {
        die(EXIT_FAULT, "cluster did not settle all jobs within 1 h");
    }

    let mut failed = 0u64;
    for &id in &ids {
        match cluster.outcome(id) {
            Some(JobOutcome::Completed { estimate, attempts }) => {
                let took = Duration::from_secs_f64(estimate.timings.total_s());
                report(&format!("job {id} ({attempts} att)"), &estimate, took);
            }
            Some(JobOutcome::Degraded {
                estimate, attempts, ..
            }) => {
                let took = Duration::from_secs_f64(estimate.timings.total_s());
                report(&format!("job {id} ({attempts} att)"), &estimate, took);
                println!("{:>18}  degraded", "");
            }
            Some(JobOutcome::Failed { error, attempts }) => {
                eprintln!("job {id}: FAILED after {attempts} attempt(s): {error}");
                failed += 1;
            }
            Some(JobOutcome::Shed { reason }) => {
                eprintln!("job {id}: shed ({reason})");
            }
            None => {
                eprintln!("job {id}: no terminal outcome (cluster bug)");
                failed += 1;
            }
        }
    }

    let stats = cluster.stats();
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, cluster.merged_metrics().to_json()) {
            eprintln!("warning: cannot write merged metrics {path}: {e}");
        } else {
            println!("merged cluster metrics written to {path}");
        }
    }
    cluster.shutdown();
    match serde_json::to_string_pretty(&stats) {
        Ok(s) => println!("{s}"),
        Err(e) => eprintln!("stats serialization failed: {e}"),
    }
    if failed > 0 {
        die(EXIT_FAULT, &format!("{failed} job(s) failed"));
    }
}

/// Input to `m3 train`: training hyper-parameters plus where to save the
/// checkpoint.
#[derive(Debug, Serialize, Deserialize)]
struct TrainSpec {
    #[serde(default)]
    train: TrainConfig,
    /// Checkpoint output path.
    #[serde(default = "default_model_out")]
    model_out: String,
}

fn default_model_out() -> String {
    "assets/m3-model.ckpt".into()
}

fn example_train_spec() -> TrainSpec {
    TrainSpec {
        train: TrainConfig::default(),
        model_out: default_model_out(),
    }
}

fn run_train(spec: &TrainSpec, metrics_out: Option<&str>) {
    let t = Instant::now();
    println!(
        "building dataset: {} scenarios ({} fg + {} bg flows each)...",
        spec.train.n_scenarios, spec.train.fg_flows, spec.train.bg_flows
    );
    let dataset = build_dataset(&spec.train);
    println!("dataset built in {:?}", t.elapsed());

    let registry = if metrics_out.is_some() {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::noop()
    };
    let t = Instant::now();
    let (net, report) =
        try_train_with_metrics(&spec.train, &dataset, &registry).unwrap_or_else(|e| die_m3(&e));
    println!(
        "trained {} epochs in {:?}: train loss {:.4} -> {:.4}, val loss {:.4}",
        spec.train.epochs,
        t.elapsed(),
        report.train_loss.first().copied().unwrap_or(f64::NAN),
        report.train_loss.last().copied().unwrap_or(f64::NAN),
        report.val_loss.last().copied().unwrap_or(f64::NAN),
    );
    if let Err(e) = m3::nn::checkpoint::save_file(&net, spec.train.seed, &spec.model_out) {
        die(
            EXIT_FAULT,
            &format!("cannot save checkpoint {:?}: {e}", spec.model_out),
        );
    }
    println!("checkpoint saved to {}", spec.model_out);
    if let Some(path) = metrics_out {
        write_snapshot(path, &registry.snapshot());
        println!("metrics snapshot written to {path}");
    }
}

/// `m3 trace <file>`: summarize an exported Chrome trace-event file —
/// event counts, counter tracks, and the slowest spans.
fn run_trace(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("read {path}: {e}")));
    let summary = summarize_chrome_json(&text)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("parse {path}: {e}")));
    print!("{}", render_trace_summary(&summary));
}

fn run_stats(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("read {path}: {e}")));
    let snap = MetricsSnapshot::from_json(&text)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("parse {path}: {e}")));
    print!("{}", render_snapshot(&snap));
}

fn read_spec<T: Deserialize>(path: &str) -> T {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(EXIT_USAGE, &format!("read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(EXIT_USAGE, &format!("parse {path}: {e}")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let metrics_out = take_flag_value(&mut args, "--metrics-out");
    let trace_opts = TraceOpts::from_args(&mut args);
    match args.get(1).map(|s| s.as_str()) {
        Some("example-spec") => match serde_json::to_string_pretty(&example_spec()) {
            Ok(s) => println!("{s}"),
            Err(e) => die(EXIT_FAULT, &format!("serialize example spec: {e}")),
        },
        Some("example-service-spec") => match serde_json::to_string_pretty(&example_service_spec())
        {
            Ok(s) => println!("{s}"),
            Err(e) => die(EXIT_FAULT, &format!("serialize example spec: {e}")),
        },
        Some("example-cluster-spec") => match serde_json::to_string_pretty(&example_cluster_spec())
        {
            Ok(s) => println!("{s}"),
            Err(e) => die(EXIT_FAULT, &format!("serialize example spec: {e}")),
        },
        Some("example-train-spec") => match serde_json::to_string_pretty(&example_train_spec()) {
            Ok(s) => println!("{s}"),
            Err(e) => die(EXIT_FAULT, &format!("serialize example spec: {e}")),
        },
        Some("estimate") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 estimate <spec.json>"));
            run_estimate(
                &read_spec::<Spec>(path),
                metrics_out.as_deref(),
                trace_opts.as_ref(),
            );
        }
        Some("sweep") => {
            if args.len() < 5 {
                die(EXIT_USAGE, "usage: m3 sweep <spec.json> <knob> <v1,v2,...>");
            }
            let spec: Spec = read_spec(&args[2]);
            run_sweep(&spec, &args[3], &args[4]);
        }
        Some("serve") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 serve <service-spec.json>"));
            run_serve(
                &read_spec::<ServiceSpec>(path),
                metrics_out.as_deref(),
                trace_opts.as_ref(),
            );
        }
        Some("cluster") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 cluster <cluster-spec.json>"));
            run_cluster(&read_spec::<ClusterSpec>(path), metrics_out.as_deref());
        }
        Some("train") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 train <train-spec.json>"));
            run_train(&read_spec::<TrainSpec>(path), metrics_out.as_deref());
        }
        Some("stats") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 stats <snapshot.json>"));
            run_stats(path);
        }
        Some("trace") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| die(EXIT_USAGE, "usage: m3 trace <trace.json>"));
            run_trace(path);
        }
        _ => {
            eprintln!(
                "usage: m3 <example-spec | estimate <spec.json> | sweep <spec.json> <knob> <values> | example-service-spec | serve <service-spec.json> | example-cluster-spec | cluster <cluster-spec.json> | example-train-spec | train <train-spec.json> | stats <snapshot.json> | trace <trace.json>> [--metrics-out <path>] [--trace-out <path> [--trace-stride-ns <ns>] [--trace-deterministic]]"
            );
            std::process::exit(EXIT_USAGE);
        }
    }
}
