#!/usr/bin/env bash
# Regenerate every table and figure. Tune M3_FLOWS / M3_PATHS / M3_SCENARIOS
# for your machine; defaults take roughly an hour on a single core.
set -uo pipefail
cd "$(dirname "$0")"
cargo build --release --workspace
BINS=(fig18_workload fig3_heatmaps fig2_paths fig5_sampling fig6_path_cdfs \
      fig16_ablation fig17_config_space table1 fig2_accuracy \
      fig10_sensitivity fig11_breakdown fig15_error_breakdown \
      fig13_window_sweep fig14_eta_sweep table5_fig12 ablation_global_flowsim)
mkdir -p results
for b in "${BINS[@]}"; do
    echo "=== running $b ==="
    ./target/release/"$b" 2>&1 | tee "results/$b.txt" || echo "!! $b failed"
done
