//! Differential tests: the packet-level simulator against analytically
//! solvable scenarios, flowSim against the packet simulator on long flows,
//! and Parsimon against full simulation where its decomposition is exact.

use m3::flowsim::prelude::*;
use m3::netsim::prelude::*;

/// host -- switch -- host with 10G links.
fn dumbbell() -> (Topology, NodeId, NodeId, Vec<LinkId>) {
    let mut topo = Topology::new();
    let a = topo.add_host();
    let s = topo.add_switch();
    let b = topo.add_host();
    let l1 = topo.add_link(a, s, 10 * GBPS, USEC);
    let l2 = topo.add_link(s, b, 10 * GBPS, USEC);
    (topo, a, b, vec![l1, l2])
}

#[test]
fn unloaded_flow_matches_analytic_fct() {
    // 100 kB over 2x10G hops: the engine's FCT must equal the closed-form
    // ideal within ACK-processing slack.
    let (topo, a, b, path) = dumbbell();
    let cfg = SimConfig {
        init_window: 500 * KB, // never window-limited
        ..SimConfig::default()
    };
    let flow = FlowSpec {
        id: 0,
        src: a,
        dst: b,
        size: 100 * KB,
        arrival: 0,
        path: path.clone(),
    };
    let out = run_simulation(&topo, cfg, vec![flow]);
    let ideal = topo.ideal_fct(&path, 100 * KB, cfg.mtu);
    let fct = out.records[0].fct;
    assert!(
        fct >= ideal && fct < ideal + ideal / 20,
        "fct {fct} vs ideal {ideal}"
    );
}

#[test]
fn serial_flows_see_no_interference() {
    // Flows spaced far apart behave as if alone.
    let (topo, a, b, path) = dumbbell();
    let flows: Vec<FlowSpec> = (0..10)
        .map(|i| FlowSpec {
            id: i,
            src: a,
            dst: b,
            size: 20 * KB,
            arrival: i as u64 * 10 * MSEC,
            path: path.clone(),
        })
        .collect();
    let out = run_simulation(&topo, SimConfig::default(), flows);
    let first = out.records[0].fct;
    for r in &out.records {
        assert_eq!(r.fct, first, "serial flows must be identical");
    }
}

#[test]
fn flowsim_matches_packet_sim_for_two_long_flows() {
    // Two simultaneous long flows from different hosts sharing one egress:
    // the fluid model's prediction (2x slowdown) should match packet-level
    // DCTCP within ~30%.
    let mut topo = Topology::new();
    let s = topo.add_switch();
    let dst = topo.add_host();
    let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
    let mut flows = Vec::new();
    for i in 0..2u32 {
        let h = topo.add_host();
        let l = topo.add_link(h, s, 10 * GBPS, USEC);
        flows.push(FlowSpec {
            id: i,
            src: h,
            dst,
            size: 2 * MB,
            arrival: 0,
            path: vec![l, dst_l],
        });
    }
    let out = run_simulation(&topo, SimConfig::default(), flows.clone());

    let ftopo = FluidTopology::new(vec![10e9]);
    let fflows: Vec<FluidFlow> = flows
        .iter()
        .map(|f| {
            let ideal = topo.ideal_fct(&f.path, f.size, 1000);
            FluidFlow {
                id: f.id,
                size: f.size,
                arrival: f.arrival,
                first_link: 0,
                last_link: 0,
                rate_cap_bps: 10e9,
                latency: 0,
                ideal_fct: ideal,
            }
        })
        .collect();
    let fluid = simulate_fluid(&ftopo, &fflows);
    for (pr, fr) in out.records.iter().zip(&fluid) {
        let ratio = pr.fct as f64 / fr.fct as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "packet {} vs fluid {} (ratio {ratio})",
            pr.fct,
            fr.fct
        );
    }
}

#[test]
fn parsimon_matches_truth_on_isolated_bottleneck() {
    // Parsimon's link-independence assumption is exact when only one link
    // is ever congested.
    let mut topo = Topology::new();
    let s = topo.add_switch();
    let dst = topo.add_host();
    let dst_l = topo.add_link(dst, s, GBPS, USEC); // the single bottleneck
    let mut flows = Vec::new();
    for i in 0..6u32 {
        let h = topo.add_host();
        let l = topo.add_link(h, s, 10 * GBPS, USEC);
        flows.push(FlowSpec {
            id: i,
            src: h,
            dst,
            size: 200 * KB,
            arrival: i as u64 * 50 * USEC,
            path: vec![l, dst_l],
        });
    }
    let cfg = SimConfig::default();
    let truth = run_simulation(&topo, cfg, flows.clone());
    let est = m3::parsimon::parsimon_estimate(&topo, &flows, &cfg);
    for (t, e) in truth.records.iter().zip(&est) {
        let ratio = e.est_fct as f64 / t.fct as f64;
        assert!(
            (0.6..1.6).contains(&ratio),
            "flow {}: parsimon {} vs truth {} ({ratio})",
            t.id,
            e.est_fct,
            t.fct
        );
    }
}

#[test]
fn ecn_keeps_queues_below_timely_queues() {
    // DCTCP (ECN at K=12KB) should hold a shorter p99 small-flow tail than
    // TIMELY's high T_high threshold under the same moderate incast.
    let build = || {
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        // Eight long flows create standing queues; short probes measure them.
        for i in 0..8u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i,
                src: h,
                dst,
                size: 1_000 * KB,
                arrival: 0,
                path: vec![l, dst_l],
            });
        }
        for i in 0..40u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: 8 + i,
                src: h,
                dst,
                size: KB,
                arrival: 100 * USEC + i as u64 * 20 * USEC,
                path: vec![l, dst_l],
            });
        }
        (topo, flows)
    };
    let probe_p99 = |cc: CcProtocol| -> f64 {
        let (topo, flows) = build();
        let out = run_simulation(
            &topo,
            SimConfig {
                cc,
                ..SimConfig::default()
            },
            flows,
        );
        let mut sldn: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.size <= KB)
            .map(|r| r.slowdown())
            .collect();
        percentile_unsorted(&mut sldn, 99.0)
    };
    let dctcp = probe_p99(CcProtocol::Dctcp);
    let timely = probe_p99(CcProtocol::Timely);
    assert!(
        dctcp < timely * 1.5,
        "DCTCP short-flow tail {dctcp} should not dwarf TIMELY {timely}"
    );
}
