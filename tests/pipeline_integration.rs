//! Cross-crate integration tests: the full m3 pipeline end to end, at small
//! scale (train -> decompose -> flowSim -> ML -> aggregate -> compare with
//! packet-level ground truth).

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::nn::prelude::ModelConfig;
use m3::workload::prelude::*;

fn tiny_train_cfg() -> TrainConfig {
    TrainConfig {
        n_scenarios: 12,
        fg_flows: 60,
        bg_flows: 180,
        epochs: 10,
        batch_size: 4,
        model: ModelConfig {
            embed: 16,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            mlp_hidden: 32,
            ..ModelConfig::repro_default(SPEC_DIM)
        },
        ..TrainConfig::default()
    }
}

fn small_workload(seed: u64) -> (FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 4_000,
            matrix_name: "A".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.45,
            seed,
        },
    );
    (ft.clone(), w.flows, SimConfig::default())
}

#[test]
fn train_then_estimate_end_to_end() {
    let cfg = tiny_train_cfg();
    let dataset = build_dataset(&cfg);
    let (net, report) = train(&cfg, &dataset);
    assert!(report.train_loss.last().unwrap() < report.train_loss.first().unwrap());

    let (ft, flows, sim_cfg) = small_workload(3);
    let estimator = M3Estimator::new(net);
    let est = estimator.estimate(&ft.topo, &flows, &sim_cfg, 25, 1);
    let p99 = est.p99();
    assert!(p99.is_finite() && p99 >= 1.0, "m3 p99 {p99}");

    // Sanity: the estimate should be within an order of magnitude of truth
    // even for a deliberately under-trained model.
    let gt = ground_truth_estimate(&run_simulation(&ft.topo, sim_cfg, flows.clone()).records);
    let ratio = p99 / gt.p99();
    assert!(
        (0.1..10.0).contains(&ratio),
        "m3 {p99} vs truth {} (ratio {ratio})",
        gt.p99()
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let cfg = tiny_train_cfg();
    let dataset = build_dataset(&cfg);
    let (net, _) = train(&cfg, &dataset);
    let (ft, flows, sim_cfg) = small_workload(5);
    let estimator = M3Estimator::new(net);
    let a = estimator.estimate(&ft.topo, &flows, &sim_cfg, 15, 9);
    let b = estimator.estimate(&ft.topo, &flows, &sim_cfg, 15, 9);
    assert_eq!(a.p99(), b.p99());
    for bkt in 0..NUM_OUTPUT_BUCKETS {
        assert_eq!(a.bucket_counts[bkt], b.bucket_counts[bkt]);
    }
}

#[test]
fn checkpoint_roundtrip_through_estimator() {
    let cfg = tiny_train_cfg();
    let dataset = build_dataset(&cfg);
    let (net, _) = train(&cfg, &dataset);
    let tmp = std::env::temp_dir().join("m3_it_ckpt.bin");
    m3::nn::checkpoint::save_file(&net, cfg.seed, &tmp).unwrap();
    let loaded = m3::nn::checkpoint::load_file(&tmp).unwrap();
    let _ = std::fs::remove_file(&tmp);
    let (ft, flows, sim_cfg) = small_workload(8);
    let a = M3Estimator::new(net).estimate(&ft.topo, &flows, &sim_cfg, 10, 2);
    let b = M3Estimator::new(loaded).estimate(&ft.topo, &flows, &sim_cfg, 10, 2);
    assert_eq!(a.p99(), b.p99(), "checkpoint must preserve predictions");
}

#[test]
fn flowsim_and_ns3path_estimators_bracket_reality() {
    // flowSim underestimates (no queueing); ns-3-path should be close.
    let (ft, flows, sim_cfg) = small_workload(13);
    let gt = ground_truth_estimate(&run_simulation(&ft.topo, sim_cfg, flows.clone()).records);
    let fs = flowsim_estimate(&ft.topo, &flows, &sim_cfg, 40, 3);
    let np = ns3_path_estimate(&ft.topo, &flows, &sim_cfg, 40, 3);
    assert!(
        fs.p99() <= gt.p99() * 1.2,
        "flowSim should not overestimate much: {} vs {}",
        fs.p99(),
        gt.p99()
    );
    let np_err = ((np.p99() - gt.p99()) / gt.p99()).abs();
    assert!(np_err < 0.8, "ns-3-path err {np_err}");
}

#[test]
fn counterfactual_config_changes_prediction() {
    let cfg = tiny_train_cfg();
    let dataset = build_dataset(&cfg);
    let (net, _) = train(&cfg, &dataset);
    let (ft, flows, _) = small_workload(17);
    let estimator = M3Estimator::new(net);
    let a = estimator.estimate(
        &ft.topo,
        &flows,
        &SimConfig {
            init_window: 5 * KB,
            ..SimConfig::default()
        },
        15,
        4,
    );
    let b = estimator.estimate(
        &ft.topo,
        &flows,
        &SimConfig {
            init_window: 30 * KB,
            ..SimConfig::default()
        },
        15,
        4,
    );
    // The spec vector must influence the output (exact direction depends on
    // training; equality would mean the knob is ignored).
    assert_ne!(a.p99(), b.p99(), "config knob must reach the model");
}
