//! Causal-tracing integration suite: the flight recorder captures the full
//! pipeline span tree and simulator counter tracks, never perturbs the
//! estimates it observes, exports byte-identical deterministic traces for
//! a fixed seed, and correlates service traces with journal entries.

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::nn::prelude::{M3Net, ModelConfig};
use m3::serve::prelude::*;
use m3::telemetry::{summarize_chrome_json, TraceCtx, TraceRecorder};
use m3::workload::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// Probe stride wide enough (1 ms of virtual time) that small scenarios
/// stay far from ring overflow, which would break determinism.
const STRIDE_NS: u64 = 1_000_000;

fn untrained_estimator() -> M3Estimator {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Estimator::new(M3Net::new(cfg, 3))
}

fn small_workload(seed: u64) -> (FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 1_500,
            matrix_name: "A".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed,
        },
    );
    (ft.clone(), w.flows, SimConfig::default())
}

fn traced_options(recorder: &TraceRecorder, trace_id: u64) -> EstimateOptions {
    let mut ctx = TraceCtx::new(recorder.clone(), trace_id);
    ctx.probe_stride_ns = STRIDE_NS;
    EstimateOptions {
        trace: ctx,
        ..EstimateOptions::default()
    }
}

#[test]
fn traced_estimate_has_full_span_tree_and_counter_tracks() {
    let (ft, flows, cfg) = small_workload(11);
    let est = untrained_estimator();
    let recorder = TraceRecorder::new(1 << 20);
    est.try_estimate(&ft.topo, &flows, &cfg, 8, 7, &traced_options(&recorder, 1))
        .unwrap();

    let rec = recorder.snapshot();
    assert_eq!(rec.dropped, 0, "ring overflowed; widen stride or capacity");
    let json = rec.to_chrome_json();
    for stage in [
        "\"estimate\"",
        "\"decompose\"",
        "\"sample\"",
        "\"flowsim\"",
        "\"slot\"",
        "\"features\"",
        "\"forward\"",
        "\"aggregate\"",
    ] {
        assert!(json.contains(stage), "missing stage span {stage}");
    }
    let summary = summarize_chrome_json(&json).unwrap();
    assert_eq!(summary.traces, vec![1]);
    assert!(summary.span_count >= 8, "spans: {}", summary.span_count);
    assert!(
        summary
            .counter_tracks
            .iter()
            .any(|(name, n)| name == "flowsim.active_flows" && *n > 0),
        "missing flowsim.active_flows track: {:?}",
        summary.counter_tracks
    );
    assert!(
        summary
            .counter_tracks
            .iter()
            .any(|(name, n)| name.starts_with("flowsim.util.h") && *n > 0),
        "missing per-link utilization tracks: {:?}",
        summary.counter_tracks
    );
}

#[test]
fn tracing_does_not_perturb_the_estimate() {
    let (ft, flows, cfg) = small_workload(13);
    let est = untrained_estimator();
    let plain = est
        .try_estimate(&ft.topo, &flows, &cfg, 8, 3, &EstimateOptions::default())
        .unwrap();
    let recorder = TraceRecorder::new(1 << 20);
    let traced = est
        .try_estimate(&ft.topo, &flows, &cfg, 8, 3, &traced_options(&recorder, 1))
        .unwrap();
    assert_eq!(plain.p99().to_bits(), traced.p99().to_bits());
    for b in 0..4 {
        assert_eq!(
            plain.bucket_p99(b).to_bits(),
            traced.bucket_p99(b).to_bits(),
            "bucket {b}"
        );
    }
    assert!(recorder.snapshot().events.len() > 8);
}

#[test]
fn deterministic_exports_are_byte_identical_across_runs() {
    let (ft, flows, cfg) = small_workload(17);
    let export = |_: u32| {
        let est = untrained_estimator();
        let recorder = TraceRecorder::new(1 << 20);
        est.try_estimate(&ft.topo, &flows, &cfg, 8, 5, &traced_options(&recorder, 1))
            .unwrap();
        let rec = recorder.snapshot();
        assert_eq!(rec.dropped, 0, "overflow would break determinism");
        rec.to_chrome_deterministic_json()
    };
    let a = export(0);
    let b = export(1);
    assert_eq!(a, b, "deterministic exports differ between runs");
    // The deterministic view is flagged like MetricsSnapshot's
    // deterministic_view, and keeps virtual-time counter samples.
    assert!(a.contains("\"deterministic\":\"true\""));
    let summary = summarize_chrome_json(&a).unwrap();
    assert!(summary.deterministic);
    assert!(summary.counter_count > 0);
}

fn scenario(n_flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.4,
        },
        config: ConfigSpec::default(),
    }
}

fn tmpjournal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("m3-tracing-{}-{name}.journal", std::process::id()));
    p
}

#[test]
fn serve_trace_ids_match_journal_entries() {
    let path = tmpjournal("correlate");
    let recorder = TraceRecorder::new(1 << 20);
    let config = ServiceConfig {
        workers: 1,
        trace: recorder.clone(),
        trace_stride_ns: STRIDE_NS,
        ..ServiceConfig::default()
    };
    let svc = Service::start_journaled(untrained_estimator(), config, &path).unwrap();
    let id0 = svc
        .submit(EstimateRequest::new(scenario(400), 4, 1))
        .unwrap();
    let id1 = svc
        .submit(EstimateRequest::new(scenario(400), 4, 2))
        .unwrap();
    assert!(svc.wait_idle(Duration::from_secs(180)));
    svc.shutdown();

    // The journal's Accepted records carry the same trace ids the exported
    // trace uses as pids — the post-crash correlation path.
    let (_j, replay) = Journal::open(&path).unwrap();
    assert_eq!(replay.trace_ids.get(&id0), Some(&trace_id_for(id0)));
    assert_eq!(replay.trace_ids.get(&id1), Some(&trace_id_for(id1)));

    let summary = summarize_chrome_json(&recorder.snapshot().to_chrome_json()).unwrap();
    assert!(summary.traces.contains(&trace_id_for(id0)), "{summary:?}");
    assert!(summary.traces.contains(&trace_id_for(id1)), "{summary:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn untraced_serve_journals_no_trace_ids() {
    let path = tmpjournal("noop");
    let svc = Service::start_journaled(
        untrained_estimator(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        &path,
    )
    .unwrap();
    svc.submit(EstimateRequest::new(scenario(400), 4, 1))
        .unwrap();
    assert!(svc.wait_idle(Duration::from_secs(180)));
    svc.shutdown();
    let (_j, replay) = Journal::open(&path).unwrap();
    assert!(replay.trace_ids.is_empty());
    std::fs::remove_file(&path).ok();
}
