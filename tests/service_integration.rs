//! Integration suite for the supervised estimation service: crash-recovery
//! replay, retry-until-success under transient faults, worker-panic
//! supervision, circuit-breaker open/close, load shedding, and deadlines.
//! Everything is seeded and fault injection is deterministic, so failures
//! replay bit-identically.

use m3::core::prelude::*;
use m3::nn::prelude::{M3Net, ModelConfig};
use m3::serve::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const PATHS: usize = 6;
const IDLE: Duration = Duration::from_secs(180);

fn untrained_estimator() -> M3Estimator {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Estimator::new(M3Net::new(cfg, 3))
}

fn scenario(n_flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.4,
        },
        config: ConfigSpec::default(),
    }
}

fn fast_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 64,
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1,
            max_delay_ms: 4,
            seed: 9,
        },
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_observations: 2,
        },
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn tmpjournal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("m3-svc-itest-{}-{name}", std::process::id()))
}

fn assert_estimates_bit_identical(a: &NetworkEstimate, b: &NetworkEstimate) {
    assert_eq!(a.bucket_counts, b.bucket_counts);
    assert_eq!(a.bucket_samples.len(), b.bucket_samples.len());
    for (x, y) in a.bucket_samples.iter().zip(&b.bucket_samples) {
        let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
    }
}

/// Run `requests` through an uninterrupted service and return the
/// estimates, as the reference for recovery comparisons.
fn reference_outcomes(requests: &[EstimateRequest]) -> Vec<NetworkEstimate> {
    let svc = Service::start(untrained_estimator(), fast_config(2));
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| svc.submit(r.clone()).expect("reference submit"))
        .collect();
    assert!(svc.wait_idle(IDLE), "reference run did not settle");
    let out = ids
        .iter()
        .map(|id| {
            svc.outcome(*id)
                .expect("reference outcome")
                .estimate()
                .expect("reference estimate")
                .clone()
        })
        .collect();
    svc.shutdown();
    out
}

fn batch(n: usize) -> Vec<EstimateRequest> {
    (0..n)
        .map(|i| EstimateRequest::new(scenario(400 + 100 * (i % 3)), PATHS, 11 + i as u64))
        .collect()
}

/// Tentpole acceptance: a journaled service killed mid-queue (before any
/// job ran) replays the journal on restart and completes every accepted
/// job with results bit-identical to an uninterrupted run.
#[test]
fn crash_recovery_replays_to_bit_identical_results() {
    let requests = batch(4);
    let reference = reference_outcomes(&requests);

    let path = tmpjournal("replay-full");
    {
        // Zero workers: jobs are accepted and journaled, never started —
        // then the handle is dropped ungracefully, as a crash would.
        let svc = Service::start_journaled(untrained_estimator(), fast_config(0), &path)
            .expect("create journal");
        for r in &requests {
            svc.submit(r.clone()).expect("submit");
        }
        let stats = svc.stats();
        assert_eq!(stats.accepted, requests.len() as u64);
        assert_eq!(stats.settled(), 0, "nothing may run before the crash");
        svc.abort();
    }

    let (svc, replay) =
        Service::resume(untrained_estimator(), fast_config(2), &path).expect("resume");
    assert_eq!(replay.pending().len(), requests.len());
    assert!(svc.wait_idle(IDLE), "resumed run did not settle");
    for (i, want) in reference.iter().enumerate() {
        let out = svc.outcome(i as u64).expect("resumed outcome");
        let got = out.estimate().expect("resumed estimate");
        assert_estimates_bit_identical(got, want);
    }
    svc.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Kill after some jobs settled: the restart replays exactly the pending
/// tail, and the union of pre-crash and post-crash outcomes covers every
/// accepted job bit-identically.
#[test]
fn partial_crash_recovery_completes_the_pending_tail() {
    let requests = batch(5);
    let reference = reference_outcomes(&requests);

    let path = tmpjournal("replay-partial");
    let settled_before = {
        let svc = Service::start_journaled(untrained_estimator(), fast_config(1), &path)
            .expect("create journal");
        for r in &requests {
            svc.submit(r.clone()).expect("submit");
        }
        // Let at least one job settle, then crash.
        let deadline = std::time::Instant::now() + IDLE;
        while svc.stats().settled() == 0 {
            assert!(std::time::Instant::now() < deadline, "no job ever settled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let settled = svc.stats().settled();
        svc.abort();
        settled
    };
    assert!(settled_before >= 1);

    let (svc, replay) =
        Service::resume(untrained_estimator(), fast_config(2), &path).expect("resume");
    assert!(
        replay.terminal.len() as u64 >= settled_before,
        "settled outcomes must be journaled"
    );
    assert!(svc.wait_idle(IDLE), "resumed run did not settle");
    let stats = svc.stats();
    assert_eq!(stats.accepted, requests.len() as u64);
    assert_eq!(
        stats.settled(),
        stats.accepted,
        "every accepted job settled"
    );
    for (i, want) in reference.iter().enumerate() {
        let out = svc.outcome(i as u64).expect("outcome");
        assert_estimates_bit_identical(out.estimate().expect("estimate"), want);
    }
    svc.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A fault that clears after the first attempt is retried and completes
/// *undegraded*, with the retry visible in the stats.
#[test]
fn transient_fault_retries_until_clean_success() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let mut req = EstimateRequest::new(scenario(500), PATHS, 21);
    req.fault_plan =
        Some(FaultPlan::new(13).with_first_attempts(InjectedFault::FlowsimBudget, 1.0, 2));
    req.policy = Some(DegradationPolicy::FailFast);
    let id = svc.submit(req).expect("submit");
    assert!(svc.wait_idle(IDLE));
    match svc.outcome(id).expect("outcome") {
        JobOutcome::Completed { estimate, attempts } => {
            assert_eq!(attempts, 3, "two faulted attempts, then success");
            assert!(
                estimate.degradation.is_clean(),
                "success must be undegraded"
            );
        }
        other => panic!("expected Completed after retries, got {other:?}"),
    }
    assert!(svc.stats().retries >= 2);
    svc.shutdown();
}

/// A persistent fault (invalid input) under FailFast dies on the first
/// attempt — no retries burned on something that cannot heal.
#[test]
fn persistent_fault_fails_fast_without_retries() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let mut req = EstimateRequest::new(scenario(500), PATHS, 22);
    req.fault_plan = Some(FaultPlan::new(14).with(InjectedFault::FlowsimNan, 1.0));
    req.policy = Some(DegradationPolicy::FailFast);
    let id = svc.submit(req).expect("submit");
    assert!(svc.wait_idle(IDLE));
    match svc.outcome(id).expect("outcome") {
        JobOutcome::Failed { error, attempts } => {
            assert_eq!(attempts, 1, "persistent faults must not be retried");
            assert!(
                matches!(error, M3Error::StageFault { .. }),
                "unexpected error: {error}"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(svc.stats().retries, 0);
    svc.shutdown();
}

/// An injected worker panic kills the thread outside the pipeline's panic
/// isolation; the supervisor recovers the job, respawns the worker, and
/// the retried job completes.
#[test]
fn worker_panic_is_supervised_and_job_recovered() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let mut req = EstimateRequest::new(scenario(500), PATHS, 23);
    req.fault_plan =
        Some(FaultPlan::new(15).with_first_attempts(InjectedFault::WorkerPanic, 1.0, 1));
    let id = svc.submit(req).expect("submit");
    // A clean job behind it proves the respawned worker keeps serving.
    let id2 = svc
        .submit(EstimateRequest::new(scenario(450), PATHS, 24))
        .expect("submit 2");
    assert!(svc.wait_idle(IDLE));
    assert!(
        matches!(
            svc.outcome(id).expect("outcome"),
            JobOutcome::Completed { .. }
        ),
        "panicked job must complete after recovery"
    );
    assert!(matches!(
        svc.outcome(id2).expect("outcome 2"),
        JobOutcome::Completed { .. }
    ));
    let stats = svc.stats();
    assert!(stats.worker_panics >= 1, "panic must be observed");
    assert!(stats.workers_respawned >= 1, "worker must be respawned");
    svc.shutdown();
}

/// Consecutive stage failures trip the breaker; while open, jobs route to
/// the flowSim-only degraded path instead of failing; a clean probe closes
/// it and full service resumes.
#[test]
fn breaker_opens_routes_degraded_and_recloses() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let submit_one = |req: EstimateRequest| -> JobOutcome {
        let id = svc.submit(req).expect("submit");
        assert!(svc.wait_idle(IDLE), "job {id} did not settle");
        svc.outcome(id).expect("outcome")
    };
    let faulty = || {
        let mut r = EstimateRequest::new(scenario(400), PATHS, 31);
        r.fault_plan = Some(FaultPlan::new(16).with(InjectedFault::FlowsimNan, 1.0));
        r.policy = Some(DegradationPolicy::FailFast);
        r
    };

    // Three consecutive failures trip the flowSim breaker.
    for _ in 0..3 {
        assert!(matches!(submit_one(faulty()), JobOutcome::Failed { .. }));
    }
    let stats = svc.stats();
    assert!(
        matches!(stats.flowsim_breaker, BreakerState::Open { .. }),
        "breaker should be open, is {:?}",
        stats.flowsim_breaker
    );
    assert!(!stats.healthy());
    assert_eq!(stats.breaker_trips, 1);

    // While open (cooldown = 2 observations), clean jobs are served by the
    // degraded flowSim-only path rather than failing or waiting.
    for i in 0..2 {
        match submit_one(EstimateRequest::new(scenario(420), PATHS, 40 + i)) {
            JobOutcome::Degraded {
                via_breaker,
                estimate,
                ..
            } => {
                assert!(via_breaker, "degradation must be attributed to the breaker");
                assert!(estimate.p99().is_finite());
            }
            other => panic!("expected Degraded via breaker, got {other:?}"),
        }
    }

    // Cooldown elapsed: the next clean job is the half-open probe; its
    // success closes the breaker and full service resumes.
    match submit_one(EstimateRequest::new(scenario(440), PATHS, 50)) {
        JobOutcome::Completed { .. } => {}
        other => panic!("probe should complete fully, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.flowsim_breaker, BreakerState::Closed);
    assert!(stats.healthy());
    svc.shutdown();
}

/// Admission control: a full queue sheds new submissions immediately and
/// visibly, accepted work is unaffected, and the books balance.
#[test]
fn overload_sheds_at_submit_and_books_balance() {
    let mut config = fast_config(0); // no workers: the queue can only fill
    config.queue_capacity = 3;
    let svc = Service::start(untrained_estimator(), config);
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for i in 0..8 {
        match svc.submit(EstimateRequest::new(scenario(400), PATHS, 60 + i)) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(accepted, 3);
    assert_eq!(shed, 5);
    let stats = svc.stats();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.shed_at_submit, 5);
    assert_eq!(stats.queue_depth, 3);
    svc.abort();
}

/// A job whose deadline expired while it sat in the queue is shed at
/// pickup, not run.
#[test]
fn expired_deadline_sheds_at_pickup() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let mut req = EstimateRequest::new(scenario(400), PATHS, 70);
    req.deadline_ms = Some(0); // expired on arrival
    let id = svc.submit(req).expect("submit");
    assert!(svc.wait_idle(IDLE));
    match svc.outcome(id).expect("outcome") {
        JobOutcome::Shed { reason } => assert!(reason.contains("deadline")),
        other => panic!("expected Shed, got {other:?}"),
    }
    // Shed jobs are terminal: the books balance.
    let stats = svc.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.settled(), stats.accepted);
    svc.shutdown();
}

/// Telemetry acceptance: kill a journaled service mid-batch and resume it.
/// The deterministic (non-timing) pipeline counters of the two partial
/// runs, merged, must equal those of an uninterrupted run — the registry
/// never double- or under-counts across a crash/replay boundary.
#[test]
fn kill_and_resume_preserves_deterministic_counter_totals() {
    let requests = batch(4);

    // Uninterrupted reference run (1 worker, like the interrupted one).
    let reference = {
        let svc = Service::start(untrained_estimator(), fast_config(1));
        for r in &requests {
            svc.submit(r.clone()).expect("reference submit");
        }
        assert!(svc.wait_idle(IDLE), "reference run did not settle");
        let snap = svc.metrics_snapshot();
        svc.shutdown();
        snap
    };

    // Interrupted run: abort once at least two jobs settled...
    let path = tmpjournal("metrics-resume");
    let first_half = {
        let svc = Service::start_journaled(untrained_estimator(), fast_config(1), &path)
            .expect("create journal");
        for r in &requests {
            svc.submit(r.clone()).expect("submit");
        }
        let deadline = std::time::Instant::now() + IDLE;
        while svc.stats().settled() < 2 {
            assert!(std::time::Instant::now() < deadline, "jobs never settled");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The registry outlives the handle; snapshot after abort so jobs
        // that settle while aborting are still counted.
        let registry = svc.metrics().clone();
        svc.abort();
        registry.snapshot()
    };

    // ...then resume and drain the pending tail.
    let second_half = {
        let (svc, _replay) =
            Service::resume(untrained_estimator(), fast_config(1), &path).expect("resume");
        assert!(svc.wait_idle(IDLE), "resumed run did not settle");
        let snap = svc.metrics_snapshot();
        svc.shutdown();
        snap
    };

    let mut merged = first_half.clone();
    merged.merge(&second_half);

    for prefix in ["pipeline.", "flowsim."] {
        let want = reference.deterministic_view().filter_prefix(prefix);
        let got = merged.deterministic_view().filter_prefix(prefix);
        assert!(!want.counters.is_empty(), "reference recorded {prefix}*");
        assert_eq!(
            want.counters, got.counters,
            "{prefix} counters must match the uninterrupted run"
        );
    }
    // Service-level books balance too: the resumed service's view counts
    // every job exactly once (replayed outcomes plus the drained tail).
    assert_eq!(
        second_half.counter("serve.completed"),
        Some(requests.len() as u64)
    );
    assert_eq!(
        reference.counter("serve.completed"),
        Some(requests.len() as u64)
    );
    std::fs::remove_file(&path).ok();
}

/// Identical scenarios across jobs share the thread-safe scenario cache:
/// the second submission hits instead of recomputing, and the hit/miss
/// counters surface on the stats snapshot.
#[test]
fn shared_cache_hits_across_jobs_and_reports_stats() {
    let svc = Service::start(untrained_estimator(), fast_config(1));
    let req = EstimateRequest::new(scenario(500), PATHS, 80);
    let a = svc.submit(req.clone()).expect("submit a");
    let b = svc.submit(req).expect("submit b");
    assert!(svc.wait_idle(IDLE));
    let ea = svc
        .outcome(a)
        .expect("a")
        .estimate()
        .expect("est a")
        .clone();
    let eb = svc
        .outcome(b)
        .expect("b")
        .estimate()
        .expect("est b")
        .clone();
    assert_estimates_bit_identical(&ea, &eb);
    let stats = svc.stats();
    assert!(stats.cache.hits > 0, "second job must hit the cache");
    assert!(stats.cache.hit_rate() > 0.0);
    svc.shutdown();
}

/// Satellite regression: a graceful shutdown must flush a final metrics
/// snapshot to `metrics_out` even when the periodic dump interval never
/// elapsed during the run.
#[test]
fn final_metrics_snapshot_flushes_on_graceful_shutdown() {
    use m3::telemetry::MetricsSnapshot;
    let mut path = std::env::temp_dir();
    path.push(format!(
        "m3-serve-final-metrics-{}.json",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let config = ServiceConfig {
        metrics_out: Some(path.clone()),
        metrics_dump_every: Duration::from_secs(3600), // never elapses
        ..fast_config(1)
    };
    let svc = Service::start(untrained_estimator(), config);
    svc.submit(EstimateRequest::new(scenario(400), PATHS, 90))
        .expect("submit");
    assert!(svc.wait_idle(IDLE));
    svc.shutdown();
    let text = std::fs::read_to_string(&path)
        .expect("shutdown must write a final snapshot despite the huge dump interval");
    let snap = MetricsSnapshot::from_json(&text).expect("snapshot must parse");
    assert_eq!(snap.counter("serve.completed"), Some(1));
    std::fs::remove_file(&path).ok();
}

/// Satellite regression: degraded and shed jobs still record into the
/// request-latency histogram — every settled job is one observation,
/// whatever its outcome.
#[test]
fn degraded_and_shed_requests_record_request_latency() {
    let svc = Service::start(untrained_estimator(), fast_config(1));

    // Job 1: degraded via an injected forward-pass poisoning the policy
    // absorbs.
    let mut degraded = EstimateRequest::new(scenario(400), PATHS, 91);
    degraded.fault_plan = Some(FaultPlan::new(33).with(InjectedFault::ForwardPoison, 0.3));
    degraded.policy = Some(DegradationPolicy::Degrade {
        max_degraded_frac: 1.0,
    });
    let id_degraded = svc.submit(degraded).expect("submit degraded");

    // Job 2: shed at pickup (deadline expired on arrival).
    let mut shed = EstimateRequest::new(scenario(400), PATHS, 92);
    shed.deadline_ms = Some(0);
    let id_shed = svc.submit(shed).expect("submit shed");

    assert!(svc.wait_idle(IDLE));
    assert!(matches!(
        svc.outcome(id_degraded).expect("degraded outcome"),
        JobOutcome::Degraded { .. }
    ));
    assert!(matches!(
        svc.outcome(id_shed).expect("shed outcome"),
        JobOutcome::Shed { .. }
    ));

    let snap = svc.metrics_snapshot();
    let latency = snap
        .histogram("serve.request_latency_seconds")
        .expect("latency histogram must be registered");
    assert_eq!(
        latency.count(),
        2,
        "both the degraded and the shed job must be observed"
    );
    svc.shutdown();
}
