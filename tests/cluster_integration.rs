//! Integration suite for the sharded estimation cluster: fault-free
//! bit-identity with a single-node service, scatter/gather of one large
//! scenario, and the kill-a-shard-mid-run guarantee — every accepted job
//! reaches exactly one terminal state and no result is lost or changed by
//! the failover. Fault injection is deterministic (seeded [`FaultPlan`]),
//! so failures replay bit-identically.

use m3::core::prelude::*;
use m3::nn::prelude::{M3Net, ModelConfig};
use m3::serve::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(180);

fn tiny_net() -> M3Net {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Net::new(cfg, 3)
}

fn scenario(n_flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.4,
        },
        config: ConfigSpec::default(),
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("m3-cluster-itest-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&d).expect("create cluster journal dir");
    d
}

fn shard_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 256,
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1,
            max_delay_ms: 4,
            seed: 9,
        },
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn assert_bit_identical(a: &NetworkEstimate, b: &NetworkEstimate, what: &str) {
    assert_eq!(a.bucket_counts, b.bucket_counts, "{what}: bucket counts");
    for bucket in 0..NUM_OUTPUT_BUCKETS {
        let (sa, sb) = (&a.bucket_samples[bucket], &b.bucket_samples[bucket]);
        assert_eq!(sa.len(), sb.len(), "{what}: bucket {bucket} sample count");
        for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: bucket {bucket} sample {i} diverged ({x} vs {y})"
            );
        }
    }
}

fn completed_estimate(o: JobOutcome, what: &str) -> NetworkEstimate {
    match o {
        JobOutcome::Completed { estimate, .. } => estimate,
        other => panic!("{what}: expected Completed, got {other:?}"),
    }
}

/// Tentpole acceptance 1: a fault-free cluster — including a scattered
/// large scenario — produces estimates bit-identical to a single
/// unsharded [`Service`] run of the same requests.
#[test]
fn fault_free_cluster_matches_single_node_bit_for_bit() {
    let dir = tmpdir("bitident");
    let config = ClusterConfig {
        shards: 4,
        shard: shard_config(1),
        journal_dir: Some(dir.clone()),
        heartbeat_every: Duration::from_millis(3),
        // Generous thresholds: this test must never false-positive a
        // busy shard into failover on a loaded machine (failover would
        // still be *correct*, but we want deaths == 0 asserted below).
        suspect_misses: 500,
        dead_misses: 1000,
        scatter_threshold: 4,
        scatter_chunk: 2,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(tiny_net(), config).expect("start cluster");
    // Five plain requests plus one large (6 paths >= threshold 4) that
    // scatters into three 2-path children.
    let requests: Vec<EstimateRequest> = (0..5u64)
        .map(|s| EstimateRequest::new(scenario(50 + 10 * s as usize), 2, s))
        .chain(std::iter::once(EstimateRequest::new(scenario(80), 6, 99)))
        .collect();
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| cluster.submit(r.clone()).expect("cluster accepts"))
        .collect();
    assert!(cluster.wait_idle(IDLE), "cluster drained");
    let stats = cluster.stats();
    assert_eq!(stats.shard_deaths, 0, "no shard may die fault-free");
    assert_eq!(stats.rerouted, 0);
    assert!(stats.drained(), "{stats:?}");
    // 6 caller jobs + 3 scatter children.
    assert_eq!(stats.submitted, 9);
    let clustered: Vec<NetworkEstimate> = ids
        .iter()
        .map(|&id| {
            completed_estimate(
                cluster.outcome(id).expect("settled"),
                &format!("cluster job {id}"),
            )
        })
        .collect();
    let merged_metrics = cluster.merged_metrics();
    cluster.shutdown();

    // Reference: one unsharded service, same requests.
    let svc = Service::start(M3Estimator::new(tiny_net()), shard_config(2));
    for (i, req) in requests.iter().enumerate() {
        let rid = svc.submit(req.clone()).expect("service accepts");
        assert!(svc.wait_idle(IDLE));
        let reference = completed_estimate(
            svc.outcome(rid).expect("settled"),
            &format!("reference job {i}"),
        );
        assert_bit_identical(&clustered[i], &reference, &format!("request {i}"));
    }
    svc.shutdown();

    // The merged telemetry view accounts for every job exactly once
    // across the coordinator and all shards.
    assert_eq!(merged_metrics.counter("cluster.submitted"), Some(9));
    assert_eq!(merged_metrics.counter("cluster.scattered"), Some(1));
    assert_eq!(merged_metrics.counter("cluster.scatter_children"), Some(3));
    // 8 leaf jobs were dispatched to shards; the shards' own serve.*
    // counters sum to the same total in the merged view.
    assert_eq!(merged_metrics.counter("cluster.dispatched"), Some(8));
    assert_eq!(merged_metrics.counter("serve.accepted"), Some(8));
    assert_eq!(merged_metrics.counter("serve.completed"), Some(8));
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole acceptance 2: kill one shard mid-run. Every accepted request
/// still reaches exactly one terminal state, nothing is shed or failed,
/// and — because routing-independent determinism means a rerouted job
/// recomputes the same bits — every estimate is still bit-identical to
/// the single-node reference.
#[test]
fn killed_shard_mid_run_loses_nothing() {
    const SHARDS: usize = 4;
    const JOBS: u64 = 16;
    // Pick a deterministic plan seed whose ShardCrash rule hits exactly
    // one of the shard slots.
    let (plan, victim) = (0..1000u64)
        .find_map(|seed| {
            let plan = FaultPlan::new(seed).with(InjectedFault::ShardCrash, 0.25);
            let hit = plan.slots_hit(InjectedFault::ShardCrash, SHARDS);
            (hit.len() == 1).then(|| (plan, hit[0]))
        })
        .expect("some seed kills exactly one shard");

    let dir = tmpdir("killshard");
    let config = ClusterConfig {
        shards: SHARDS,
        shard: ServiceConfig {
            // Slow each attempt down so the victim still has queued and
            // in-flight work when it dies.
            simulated_io: Duration::from_millis(30),
            ..shard_config(1)
        },
        journal_dir: Some(dir.clone()),
        heartbeat_every: Duration::from_millis(3),
        suspect_misses: 2,
        dead_misses: 5,
        reroute_retry: RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 2,
            max_delay_ms: 20,
            seed: 7,
        },
        fault_plan: Some(plan),
        fault_after_dispatches: 4,
        restart_dead_shards: true,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(tiny_net(), config).expect("start cluster");
    let requests: Vec<EstimateRequest> = (0..JOBS)
        .map(|s| EstimateRequest::new(scenario(40 + (s as usize % 4) * 10), 2, s))
        .collect();
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| cluster.submit(r.clone()).expect("cluster accepts"))
        .collect();
    assert!(cluster.wait_idle(IDLE), "cluster drained after shard death");
    let stats = cluster.stats();
    assert!(stats.drained(), "{stats:?}");
    assert_eq!(stats.submitted, JOBS);
    assert_eq!(
        stats.settled, JOBS,
        "every accepted job settled exactly once (dedupe guards dup terminals)"
    );
    assert!(
        stats.shard_deaths >= 1,
        "the injected crash must be detected: {stats:?}"
    );
    assert!(
        stats.shard_recoveries >= 1,
        "the dead shard must restart: {stats:?}"
    );
    // The victim restarted (recoveries >= 1 above). Its health at
    // snapshot time is usually Recovered, but a busy one-core machine can
    // spuriously re-suspect any shard right at the end, and every such
    // failover is still lossless — so `victim` is only used for the
    // routability sanity check here, not pinned to a final health state.
    assert!(victim < SHARDS);
    let clustered: Vec<NetworkEstimate> = ids
        .iter()
        .map(|&id| {
            completed_estimate(
                cluster.outcome(id).expect("settled"),
                &format!("cluster job {id}"),
            )
        })
        .collect();
    cluster.shutdown();

    // Lossless: rerouted/adopted results match the single-node reference
    // bit for bit.
    let svc = Service::start(M3Estimator::new(tiny_net()), shard_config(2));
    for (i, req) in requests.iter().enumerate() {
        let rid = svc.submit(req.clone()).expect("service accepts");
        assert!(svc.wait_idle(IDLE));
        let reference = completed_estimate(
            svc.outcome(rid).expect("settled"),
            &format!("reference job {i}"),
        );
        assert_bit_identical(&clustered[i], &reference, &format!("request {i}"));
    }
    svc.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A stalled shard (frozen supervisor heartbeat, workers still running —
/// the wedged-but-alive failure mode) is detected as Suspect, declared
/// Dead, and failed over; its settled work is adopted from the journal
/// rather than recomputed, and nothing settles twice.
#[test]
fn stalled_shard_is_failed_over_without_losing_or_duplicating_work() {
    const SHARDS: usize = 3;
    const JOBS: u64 = 12;
    let (plan, victim) = (0..1000u64)
        .find_map(|seed| {
            let plan = FaultPlan::new(seed).with(InjectedFault::ShardStall, 0.34);
            let hit = plan.slots_hit(InjectedFault::ShardStall, SHARDS);
            (hit.len() == 1).then(|| (plan, hit[0]))
        })
        .expect("some seed stalls exactly one shard");
    let dir = tmpdir("stallshard");
    let config = ClusterConfig {
        shards: SHARDS,
        shard: ServiceConfig {
            simulated_io: Duration::from_millis(20),
            ..shard_config(1)
        },
        journal_dir: Some(dir.clone()),
        heartbeat_every: Duration::from_millis(3),
        suspect_misses: 2,
        dead_misses: 5,
        fault_plan: Some(plan),
        fault_after_dispatches: 3,
        restart_dead_shards: true,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(tiny_net(), config).expect("start cluster");
    let ids: Vec<u64> = (0..JOBS)
        .map(|s| {
            cluster
                .submit(EstimateRequest::new(scenario(40), 2, s))
                .expect("cluster accepts")
        })
        .collect();
    assert!(cluster.wait_idle(IDLE), "cluster drained after stall");
    let stats = cluster.stats();
    assert!(stats.drained(), "{stats:?}");
    assert_eq!(stats.settled, JOBS, "exactly one terminal per job");
    assert!(stats.shard_deaths >= 1, "stall must escalate to Dead");
    assert!(
        stats.shard_recoveries >= 1,
        "the stalled shard (index {victim}) must be restarted: {stats:?}"
    );
    for id in ids {
        let o = cluster.outcome(id).expect("settled");
        assert!(
            matches!(o, JobOutcome::Completed { .. }),
            "job {id} must complete despite the stall: {o:?}"
        );
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
