//! Fault-injection suite: every injected fault must surface as a typed
//! [`M3Error`] (FailFast) or as a finite estimate with an accurate
//! [`DegradationReport`] (Degrade) — never a panic, a hang, or a silently
//! wrong number. Faults are injected deterministically via [`FaultPlan`],
//! so every case replays bit-identically.

use m3::core::prelude::*;
use m3::flowsim::prelude::FluidBudget;
use m3::netsim::prelude::*;
use m3::nn::prelude::ModelConfig;
use m3::workload::prelude::*;

fn small_workload(seed: u64) -> (FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 1_500,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed,
        },
    );
    (ft.clone(), w.flows, SimConfig::default())
}

fn untrained_estimator() -> M3Estimator {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Estimator::new(m3::nn::prelude::M3Net::new(cfg, 3))
}

fn assert_estimates_bit_identical(a: &NetworkEstimate, b: &NetworkEstimate) {
    assert_eq!(a.bucket_counts, b.bucket_counts);
    assert_eq!(a.bucket_samples.len(), b.bucket_samples.len());
    for (x, y) in a.bucket_samples.iter().zip(&b.bucket_samples) {
        let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
    }
}

const K_PATHS: usize = 12;
const SEED: u64 = 5;

fn degrade_all() -> DegradationPolicy {
    DegradationPolicy::Degrade {
        max_degraded_frac: 1.0,
    }
}

/// The flowSim-stage faults: each drives a different failure path in the
/// fluid engine (typed invalid-input error, budget exhaustion, panic
/// isolation).
const FLOWSIM_FAULTS: [(InjectedFault, FaultKind); 3] = [
    (InjectedFault::FlowsimNan, FaultKind::InvalidInput),
    (InjectedFault::FlowsimBudget, FaultKind::BudgetExceeded),
    (InjectedFault::FlowsimPanic, FaultKind::Panic),
];

#[test]
fn every_flowsim_fault_is_typed_under_fail_fast() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    for (kind, expect_fault) in FLOWSIM_FAULTS {
        let opts = EstimateOptions {
            policy: DegradationPolicy::FailFast,
            fault_plan: Some(FaultPlan::new(1).with(kind, 1.0)),
            ..EstimateOptions::default()
        };
        let err = est
            .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
            .expect_err("injected fault must fail a FailFast run");
        match err {
            M3Error::StageFault { stage, fault, .. } => {
                assert_eq!(stage, Stage::FlowSim, "{kind:?}");
                assert_eq!(fault, expect_fault, "{kind:?}");
            }
            other => panic!("{kind:?}: expected StageFault, got {other}"),
        }
    }
}

#[test]
fn forward_poison_is_typed_under_fail_fast() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: DegradationPolicy::FailFast,
        fault_plan: Some(FaultPlan::new(1).with(InjectedFault::ForwardPoison, 1.0)),
        ..EstimateOptions::default()
    };
    let err = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect_err("poisoned forward pass must fail a FailFast run");
    assert!(
        matches!(
            err,
            M3Error::StageFault {
                stage: Stage::Forward,
                fault: FaultKind::NonFinite,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn degrade_absorbs_forward_faults_with_accurate_report() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: degrade_all(),
        fault_plan: Some(FaultPlan::new(1).with(InjectedFault::ForwardPoison, 1.0)),
        ..EstimateOptions::default()
    };
    let e = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect("full degradation is allowed");
    let rep = &e.degradation;
    assert_eq!(rep.total_samples, K_PATHS);
    // Forward faults keep the flowSim result: degraded, not dropped.
    assert_eq!(rep.degraded_samples, K_PATHS);
    assert_eq!(rep.dropped_samples, 0);
    assert!(rep
        .events
        .iter()
        .all(|ev| ev.stage == Stage::Forward && ev.fault == FaultKind::NonFinite));
    assert_eq!(
        rep.events
            .iter()
            .map(|ev| ev.samples_affected)
            .sum::<usize>(),
        K_PATHS
    );
    let p99 = e.p99();
    assert!(p99.is_finite() && p99 >= 1.0, "p99 {p99}");

    // Degrading every sample to the uncorrected flowSim distribution must
    // equal the flowSim-only ablation estimator.
    let fs = flowsim_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED);
    assert_estimates_bit_identical(&fs, &e);
}

#[test]
fn degrade_drops_flowsim_faulted_samples_and_reports_them() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    for (kind, expect_fault) in FLOWSIM_FAULTS {
        // Inject on roughly half the slots so usable samples remain.
        let opts = EstimateOptions {
            policy: degrade_all(),
            fault_plan: Some(FaultPlan::new(4).with(kind, 0.5)),
            ..EstimateOptions::default()
        };
        let e = est
            .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
            .expect("partial degradation is allowed");
        let rep = &e.degradation;
        assert_eq!(rep.total_samples, K_PATHS, "{kind:?}");
        assert_eq!(rep.degraded_samples, 0, "{kind:?}");
        assert_eq!(
            rep.dropped_samples,
            rep.events
                .iter()
                .map(|ev| ev.samples_affected)
                .sum::<usize>(),
            "{kind:?}"
        );
        assert!(
            rep.dropped_samples > 0 && rep.dropped_samples < K_PATHS,
            "{kind:?}: want a partial drop, got {}",
            rep.dropped_samples
        );
        assert!(
            rep.events
                .iter()
                .all(|ev| ev.stage == Stage::FlowSim && ev.fault == expect_fault),
            "{kind:?}: {:?}",
            rep.events
        );
        let p99 = e.p99();
        assert!(p99.is_finite() && p99 >= 1.0, "{kind:?}: p99 {p99}");
    }
}

#[test]
fn degradation_limit_aborts_widespread_faults() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: DegradationPolicy::Degrade {
            max_degraded_frac: 0.1,
        },
        fault_plan: Some(FaultPlan::new(1).with(InjectedFault::FlowsimPanic, 1.0)),
        ..EstimateOptions::default()
    };
    let err = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect_err("every sample faulted; 10% ceiling must trip");
    match err {
        M3Error::DegradationLimitExceeded {
            degraded,
            total,
            max_frac,
        } => {
            assert_eq!((degraded, total), (K_PATHS, K_PATHS));
            assert!((max_frac - 0.1).abs() < 1e-12);
        }
        other => panic!("expected DegradationLimitExceeded, got {other}"),
    }
}

#[test]
fn all_samples_dropped_yields_no_usable_samples() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: degrade_all(),
        fault_plan: Some(FaultPlan::new(1).with(InjectedFault::FlowsimBudget, 1.0)),
        ..EstimateOptions::default()
    };
    let err = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect_err("no sample survives");
    assert!(
        matches!(err, M3Error::NoUsableSamples { total } if total == K_PATHS),
        "{err}"
    );
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    // A plan with no rules (0 affected samples) must not perturb the
    // estimate in any way: same bits as the fault-free pipeline.
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let clean = est.estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED);
    let opts = EstimateOptions {
        fault_plan: Some(FaultPlan::new(123)),
        ..EstimateOptions::default()
    };
    let planned = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect("empty plan faults nothing");
    assert_estimates_bit_identical(&clean, &planned);
    assert!(planned.degradation.is_clean());
}

#[test]
fn injected_runs_are_deterministic() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: degrade_all(),
        fault_plan: Some(FaultPlan::new(9).with(InjectedFault::FlowsimPanic, 0.4)),
        ..EstimateOptions::default()
    };
    let a = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect("partial degradation");
    let b = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect("partial degradation");
    assert_estimates_bit_identical(&a, &b);
    assert_eq!(a.degradation, b.degradation);
}

#[test]
fn degraded_results_are_never_cached() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let mut cache = ScenarioCache::new(256);

    // First run degrades every forward output; nothing may enter the cache.
    let opts = EstimateOptions {
        policy: degrade_all(),
        fault_plan: Some(FaultPlan::new(1).with(InjectedFault::ForwardPoison, 1.0)),
        ..EstimateOptions::default()
    };
    let degraded = est
        .try_estimate_with_cache(&ft.topo, &flows, &cfg, K_PATHS, SEED, &mut cache, &opts)
        .expect("full degradation is allowed");
    assert!(!degraded.degradation.is_clean());
    assert_eq!(cache.len(), 0, "fallback distributions must not be cached");

    // A later fault-free run must therefore produce the exact clean answer.
    let clean = est.estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED);
    let after = est
        .try_estimate_with_cache(
            &ft.topo,
            &flows,
            &cfg,
            K_PATHS,
            SEED,
            &mut cache,
            &EstimateOptions::default(),
        )
        .expect("fault-free run");
    assert_estimates_bit_identical(&clean, &after);
    assert!(after.degradation.is_clean());
}

#[test]
fn poisoned_cache_entry_is_evicted_and_recomputed() {
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let mut cache = ScenarioCache::new(256);

    let clean = est.estimate_with_cache(&ft.topo, &flows, &cfg, K_PATHS, SEED, &mut cache);
    assert!(!cache.is_empty());

    // Overwrite every cached distribution with poison (NaN percentile):
    // the cache is keyed by fingerprints the test can compute itself, so
    // re-derive each key and insert a corrupt distribution over it. The
    // re-run must evict the poison, recompute, and return the exact clean
    // estimate with repair events (0 samples affected).
    let index = PathIndex::build(&ft.topo, &flows);
    let sampled = index.sample_paths(K_PATHS, SEED);
    let model_fp = est.net.fingerprint();
    let mut n_poisoned = 0;
    for &g in &sampled {
        let data = PathScenarioData::from_group(&ft.topo, &flows, &index, g, &cfg);
        let spec = spec_vector(&cfg, data.fg_base_rtt, data.fg_bottleneck);
        let key = scenario_fingerprint(&data, &spec, true);
        let mut poison = PathDistribution::from_samples(&[(500, 2.0)]);
        poison.buckets[0][0] = f64::NAN;
        cache.insert(key, model_fp, poison);
        n_poisoned += 1;
    }
    assert!(n_poisoned > 0);

    let repaired = est
        .try_estimate_with_cache(
            &ft.topo,
            &flows,
            &cfg,
            K_PATHS,
            SEED,
            &mut cache,
            &EstimateOptions::default(),
        )
        .expect("poisoned cache must be repaired, not fatal");
    assert_estimates_bit_identical(&clean, &repaired);
    let rep = &repaired.degradation;
    assert_eq!(rep.degraded_samples + rep.dropped_samples, 0);
    assert!(
        rep.events.iter().all(|ev| ev.stage == Stage::Cache
            && ev.fault == FaultKind::Corruption
            && ev.samples_affected == 0),
        "{:?}",
        rep.events
    );
    assert!(!rep.events.is_empty(), "repairs must be reported");
    assert_eq!(
        repaired.timings.cache_hits, 0,
        "poison cannot count as a hit"
    );
}

#[test]
fn stage_budget_bounds_flowsim() {
    // A tiny event budget trips deterministically (as a typed error) on
    // any real path scenario instead of letting a runaway run hang.
    let (ft, flows, cfg) = small_workload(5);
    let est = untrained_estimator();
    let opts = EstimateOptions {
        policy: DegradationPolicy::FailFast,
        budget: StageBudget {
            flowsim: FluidBudget::events(10),
        },
        ..EstimateOptions::default()
    };
    let err = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect_err("a 10-event flowSim budget cannot finish a real path");
    assert!(
        matches!(
            err,
            M3Error::StageFault {
                stage: Stage::FlowSim,
                fault: FaultKind::BudgetExceeded,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn corrupted_checkpoint_fails_loading_with_typed_error_not_oom() {
    use m3::nn::prelude::{load_file, save_file, M3Net};
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    let net = M3Net::new(cfg, 3);
    let dir = std::env::temp_dir().join("m3_fault_injection_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bin");
    save_file(&net, 3, &path).unwrap();
    let clean_bytes = std::fs::read(&path).unwrap();

    // Corrupt the header region (past magic+version+len = 12 bytes) at
    // several seeds: load must return an error or — if the flip only
    // touched payload f32s that happen to parse — a loadable net; it must
    // never panic or over-allocate.
    for seed in 0..8u64 {
        let mut bytes = clean_bytes.clone();
        FaultPlan::new(seed).corrupt_bytes(&mut bytes, 12, 4);
        if bytes == clean_bytes {
            continue;
        }
        let corrupted_path = dir.join(format!("corrupt_{seed}.bin"));
        std::fs::write(&corrupted_path, &bytes).unwrap();
        let _ = load_file(&corrupted_path); // must return, not panic
    }

    // A corrupt length field claiming a multi-GB header must be rejected.
    let mut bytes = clean_bytes.clone();
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = load_file(&path).expect_err("absurd header length");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a NaN weight reachable only through a zero activation must
/// still surface as a forward-stage fault.
///
/// The hidden unit feeding the poisoned `mlp.w2` row is pinned to exactly
/// 0.0 by a huge negative `mlp.b1` bias (relu clamp), so every product with
/// the NaN row is `0.0 * NaN`. The original matmul kernels skipped zero
/// activations unconditionally, silently dropping the NaN and returning a
/// finite — corrupt — estimate. The kernels now only skip when the weight
/// operand is provably finite, so the NaN propagates IEEE-correctly and a
/// FailFast run reports `Stage::Forward` / `FaultKind::NonFinite`.
#[test]
fn nan_weight_behind_zero_activation_faults_forward_stage() {
    use m3::nn::prelude::ParamId;

    let (ft, flows, cfg) = small_workload(7);
    let mut est = untrained_estimator();
    let (mut b1, mut w2) = (None, None);
    for (i, p) in est.net.store.iter().enumerate() {
        match p.name.as_str() {
            "mlp.b1" => b1 = Some(ParamId(i)),
            "mlp.w2" => w2 = Some(ParamId(i)),
            _ => {}
        }
    }
    let (b1, w2) = (b1.expect("mlp.b1 exists"), w2.expect("mlp.w2 exists"));
    // Hidden unit 0 relu-clamps to exactly 0.0 for every input...
    est.net.store.get_mut(b1).data[0] = -1e9;
    // ...and the weight row it feeds is poisoned with NaN.
    let cols = est.net.store.get(w2).cols;
    for c in 0..cols {
        est.net.store.get_mut(w2).data[c] = f32::NAN;
    }

    let opts = EstimateOptions {
        policy: DegradationPolicy::FailFast,
        ..EstimateOptions::default()
    };
    let err = est
        .try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, &opts)
        .expect_err("NaN parameters must fail a FailFast run");
    assert!(
        matches!(
            err,
            M3Error::StageFault {
                stage: Stage::Forward,
                fault: FaultKind::NonFinite,
                ..
            }
        ),
        "{err}"
    );
}
