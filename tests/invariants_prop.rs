//! Property-based tests (proptest) over the workspace's core invariants:
//! max-min fairness, percentile math, feature maps, decomposition, and
//! aggregation.

use m3::core::prelude::*;
use m3::flowsim::prelude::*;
use m3::netsim::prelude::*;
use proptest::prelude::*;

fn arb_fluid_flow(n_links: u16) -> impl Strategy<Value = FluidFlow> {
    (
        0u64..50_000,
        0u64..2_000_000,
        0..n_links,
        0..n_links,
        prop::bool::ANY,
    )
        .prop_map(move |(size, arrival, a, b, capped)| {
            let (first, last) = (a.min(b), a.max(b));
            FluidFlow {
                id: 0, // assigned by caller
                size,
                arrival,
                first_link: first,
                last_link: last,
                rate_cap_bps: if capped { 10e9 } else { f64::INFINITY },
                latency: 1_000,
                ideal_fct: 0,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fluid flow completes, FCTs are at least the unloaded FCT, and
    /// the fast engine matches the O(F^2) reference.
    #[test]
    fn fluid_fast_matches_reference(
        raw in prop::collection::vec(arb_fluid_flow(3), 1..60)
    ) {
        let topo = FluidTopology::new(vec![10e9, 40e9, 10e9]);
        let flows: Vec<FluidFlow> = raw.into_iter().enumerate().map(|(i, mut f)| {
            f.id = i as u32;
            f.ideal_fct = fluid_ideal_fct(&topo, &f);
            f
        }).collect();
        let fast = simulate_fluid(&topo, &flows);
        let slow = simulate_fluid_reference(&topo, &flows);
        prop_assert_eq!(fast.len(), flows.len());
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert_eq!(f.id, s.id);
            let tol = 2.0 + 1e-5 * s.fct as f64;
            prop_assert!((f.fct as f64 - s.fct as f64).abs() <= tol,
                "flow {}: fast {} vs ref {}", f.id, f.fct, s.fct);
            prop_assert!(f.slowdown() >= 1.0 - 1e-6);
        }
    }

    /// Max-min feasibility on a single link: the makespan can never beat
    /// the work conservation bound (total bytes / capacity).
    #[test]
    fn fluid_single_link_work_conservation(
        sizes in prop::collection::vec(1u64..100_000, 1..40)
    ) {
        let topo = FluidTopology::new(vec![8e9]); // 1 byte/ns
        let flows: Vec<FluidFlow> = sizes.iter().enumerate().map(|(i, &size)| FluidFlow {
            id: i as u32, size, arrival: 0, first_link: 0, last_link: 0,
            rate_cap_bps: f64::INFINITY, latency: 0, ideal_fct: 1,
        }).collect();
        let recs = simulate_fluid(&topo, &flows);
        let total: u64 = sizes.iter().map(|&s| s.max(1)).sum();
        let makespan = recs.iter().map(|r| r.fct).max().unwrap();
        prop_assert!(makespan + 2 >= total, "makespan {makespan} < work bound {total}");
        // And the last completion is at most total work (max-min never idles
        // a busy link).
        prop_assert!(makespan <= total + 2, "makespan {makespan} > {total}: link idled");
    }

    /// Percentile vectors are monotone and bounded by the sample extremes.
    #[test]
    fn percentile_vector_monotone_and_bounded(
        mut v in prop::collection::vec(0.0f64..1e6, 1..300)
    ) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pv = m3::netsim::stats::percentile_vector(&v);
        for w in pv.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(pv[0] >= v[0] - 1e-9);
        prop_assert!(pv[99] <= v[v.len() - 1] + 1e-9);
    }

    /// Feature maps conserve flow counts and keep rows monotone.
    #[test]
    fn feature_map_invariants(
        samples in prop::collection::vec((1u64..10_000_000, 1.0f64..500.0), 0..200)
    ) {
        let m = FeatureMap::feature(&samples);
        prop_assert_eq!(m.total_flows(), samples.len());
        for b in 0..SIZE_BUCKETS.len() {
            let row = m.bucket(b);
            if m.counts[b] == 0 {
                prop_assert!(row.iter().all(|&v| v == 0.0));
            } else {
                for w in row.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                prop_assert!(row[0] >= 1.0);
            }
        }
        // Log encoding roundtrip: decoded non-empty entries within 0.1%.
        let enc = m.encode_log();
        let dec = m3::core::features::decode_log(&enc);
        for (i, (&orig, &back)) in m.data.iter().zip(&dec).enumerate() {
            if orig > 0.0 {
                prop_assert!((orig - back).abs() / orig < 1e-3, "idx {i}: {orig} vs {back}");
            }
        }
    }

    /// Aggregation: overall quantiles are bounded by bucket extremes and
    /// monotone in p.
    #[test]
    fn aggregation_quantiles_monotone(
        samples in prop::collection::vec((1u64..1_000_000, 1.0f64..100.0), 1..150)
    ) {
        let d = PathDistribution::from_samples(&samples);
        let est = NetworkEstimate::aggregate(&[d]);
        let qs: Vec<f64> = [1.0, 25.0, 50.0, 75.0, 99.0, 100.0]
            .iter().map(|&p| est.overall_quantile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(0.0f64, f64::max);
        prop_assert!(qs[0] >= lo - 1e-9 && qs[5] <= hi + 1e-9);
    }

    /// Empirical CDF sampling: inverse is monotone in u and respects table
    /// bounds.
    #[test]
    fn cdf_table_inverse_monotone(us in prop::collection::vec(0.0f64..1.0, 1..50)) {
        use m3::workload::prelude::*;
        let dist = SizeDistribution::hadoop();
        if let SizeDistribution::Empirical(t) = &dist {
            let mut sorted = us.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let vals: Vec<u64> = sorted.iter().map(|&u| t.inverse(u)).collect();
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert!(*vals.last().unwrap() <= 3_000_000);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decomposition invariants on random workloads: foreground groups
    /// partition the flows; background flows intersect the path but are not
    /// foreground; sampled groups are valid.
    #[test]
    fn decomposition_invariants(seed in 0u64..500) {
        use m3::workload::prelude::*;
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(&ft, &routing, &Scenario {
            n_flows: 600,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed,
        });
        let idx = PathIndex::build(&ft.topo, &w.flows);
        let total: usize = (0..idx.num_paths()).map(|g| idx.foreground_of(g).len()).sum();
        prop_assert_eq!(total, w.flows.len());
        for &g in idx.sample_paths(10, seed).iter() {
            prop_assert!(g < idx.num_paths());
            let fg: std::collections::HashSet<u32> =
                idx.foreground_of(g).iter().copied().collect();
            for (fi, a, b) in idx.background_of(g, &w.flows) {
                prop_assert!(!fg.contains(&fi), "background flow also foreground");
                prop_assert!(a <= b);
                prop_assert!(b < idx.rep_flow(g, &w.flows).path.len());
            }
        }
    }

    /// Packet simulator sanity on random single-switch workloads: all flows
    /// complete, slowdowns >= ~1, determinism holds.
    #[test]
    fn netsim_random_workload_sanity(
        sizes in prop::collection::vec(50u64..200_000, 1..30),
        seed in 0u64..100
    ) {
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i as u32,
                src: h,
                dst,
                size,
                arrival: (seed * 31 + i as u64 * 977) % 100_000,
                path: vec![l, dst_l],
            });
        }
        let out1 = run_simulation(&topo, SimConfig::default(), flows.clone());
        let out2 = run_simulation(&topo, SimConfig::default(), flows);
        prop_assert_eq!(out1.records.len(), sizes.len());
        for (a, b) in out1.records.iter().zip(&out2.records) {
            prop_assert_eq!(a.fct, b.fct);
            prop_assert!(a.slowdown() >= 0.99, "slowdown {}", a.slowdown());
        }
    }
}
