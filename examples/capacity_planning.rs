//! Capacity planning: compare oversubscription levels for a fixed workload
//! using the packet-level simulator as ground truth and Parsimon + flowSim
//! path estimates as fast alternatives — the "network designer" workflow
//! from the paper's introduction.
//!
//! Run with: `cargo run --release --example capacity_planning`

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::parsimon::{parsimon_estimate, slowdown_samples};
use m3::workload::prelude::*;

fn main() {
    println!("How much core capacity does this workload need?");
    println!("(32-rack fat tree, CacheFollower, clustered matrix A, fixed demand)\n");
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>12}",
        "oversub", "truth p99", "Parsimon p99", "flowSim p99", "truth time"
    );
    for oversub in [1usize, 2, 4] {
        let ft = FatTree::build(FatTreeSpec::small(oversub));
        let routing = Routing::new(&ft.topo);
        // Fixed absolute demand: keep the arrival process identical by
        // calibrating on the 1:1 fabric and reusing the load target scaled
        // by the fabric capacity ratio (fewer spines -> higher core load).
        let base_load = 0.25 * (4.0 / (4.0 / oversub as f64)).min(3.0);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 20_000,
                matrix_name: "A".into(),
                sizes: SizeDistribution::cache_follower(),
                sigma: 1.0,
                max_load: base_load.min(0.85),
                seed: 5,
            },
        );
        let config = SimConfig::default();
        let t = std::time::Instant::now();
        let gt = ground_truth_estimate(&run_simulation(&ft.topo, config, w.flows.clone()).records);
        let gt_time = t.elapsed();
        let pars = {
            let recs = parsimon_estimate(&ft.topo, &w.flows, &config);
            NetworkEstimate::aggregate(&[PathDistribution::from_samples(&slowdown_samples(&recs))])
        };
        let fsim = flowsim_estimate(&ft.topo, &w.flows, &config, 80, 2);
        println!(
            "{:>6}:1 {:>14.2} {:>14.2} {:>14.2} {:>11.1?}",
            oversub,
            gt.p99(),
            pars.p99(),
            fsim.p99(),
            gt_time
        );
    }
    println!("\nAll estimators agree on the ordering: less core capacity, worse tail.");
    println!("For the ML-corrected m3 estimate, see examples/quickstart.rs.");
}
