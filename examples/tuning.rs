//! Automated network tuning on top of m3's counterfactual speed: prepare
//! the workload's flowSim features once, then let golden-section search
//! pick the DCTCP marking threshold that minimizes small-flow tail latency.
//! Each candidate costs one batch of model inferences, not a packet
//! simulation.
//!
//! Run with: `cargo run --release --example tuning`

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::workload::prelude::*;

fn load_model() -> m3::nn::prelude::M3Net {
    if let Ok(net) = m3::nn::checkpoint::load_file("assets/m3-model.ckpt") {
        return net;
    }
    println!("no checkpoint found; training a small model first...");
    let cfg = TrainConfig {
        n_scenarios: 60,
        epochs: 20,
        ..TrainConfig::default()
    };
    let dataset = build_dataset(&cfg);
    train(&cfg, &dataset).0
}

fn main() {
    let estimator = M3Estimator::new(load_model());
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 20_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.5,
            max_load: 0.6,
            seed: 21,
        },
    );
    let base = SimConfig::default();

    let t = std::time::Instant::now();
    let prepared = PreparedWorkload::prepare(&ft.topo, &w.flows, &base, 80, 3);
    println!(
        "prepared 80 paths once in {:?} (flowSim features are config-independent)",
        t.elapsed()
    );

    // Objective: p99 slowdown of the smallest flow class (0, 1KB].
    let t = std::time::Instant::now();
    let result = golden_section_search(
        &estimator,
        &prepared,
        &base,
        Knob::DctcpK,
        Knob::DctcpK.table4_range(),
        8,
        bucket_p99_objective(0),
    );
    println!(
        "golden-section search over DCTCP K evaluated {} configs in {:?}:",
        result.points.len(),
        t.elapsed()
    );
    let mut pts = result.points.clone();
    pts.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap());
    for p in &pts {
        println!(
            "  K = {:>7.0} B: small-flow p99 {:>6.2}   (overall p99 {:.2})",
            p.value, p.objective, p.overall_p99
        );
    }
    println!(
        "\nrecommended K = {:.0} B (predicted small-flow p99 {:.2})",
        result.best.value, result.best.objective
    );

    // Validate the recommendation against one packet-level simulation.
    let tuned = Knob::DctcpK.apply(&base, result.best.value);
    let t = std::time::Instant::now();
    let gt_base = ground_truth_estimate(&run_simulation(&ft.topo, base, w.flows.clone()).records);
    let gt_tuned = ground_truth_estimate(&run_simulation(&ft.topo, tuned, w.flows.clone()).records);
    println!(
        "\npacket-level check ({:?}): small-flow p99 default K {:.2} -> tuned K {:.2}",
        t.elapsed(),
        gt_base.bucket_p99(0),
        gt_tuned.bucket_p99(0)
    );
}
