//! A tour of the packet-level simulator substrate: a 16-to-1 incast on a
//! single switch, run under all four congestion-control protocols, with and
//! without PFC. Shows the `m3-netsim` API directly (no m3 pipeline).
//!
//! Run with: `cargo run --release --example simulator_tour`

use m3::netsim::prelude::*;

fn build_incast(fan_in: u32, size: Bytes) -> (Topology, Vec<FlowSpec>) {
    let mut topo = Topology::new();
    let s = topo.add_switch();
    let dst = topo.add_host();
    let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
    let mut flows = Vec::new();
    for i in 0..fan_in {
        let h = topo.add_host();
        let l = topo.add_link(h, s, 10 * GBPS, USEC);
        flows.push(FlowSpec {
            id: i,
            src: h,
            dst,
            size,
            arrival: (i as u64) * 500, // near-synchronized burst
            path: vec![l, dst_l],
        });
    }
    (topo, flows)
}

fn p(sorted: &mut [f64], q: f64) -> f64 {
    percentile_unsorted(sorted, q)
}

fn main() {
    println!("16-to-1 incast of 64KB responses into one 10G port\n");
    println!(
        "{:>8} {:>5} {:>10} {:>10} {:>10} {:>7} {:>9}",
        "CC", "PFC", "p50 sldn", "p99 sldn", "max sldn", "drops", "finish"
    );
    for cc in CcProtocol::ALL {
        for pfc in [false, true] {
            let (topo, flows) = build_incast(16, 64 * KB);
            let config = SimConfig {
                cc,
                pfc_enabled: pfc,
                buffer_size: 200 * KB,
                pfc_threshold: 80 * KB,
                ..SimConfig::default()
            };
            let out = run_simulation(&topo, config, flows);
            let mut sldn: Vec<f64> = out.records.iter().map(|r| r.slowdown()).collect();
            println!(
                "{:>8} {:>5} {:>10.2} {:>10.2} {:>10.2} {:>7} {:>8.2}ms",
                cc.name(),
                if pfc { "on" } else { "off" },
                p(&mut sldn, 50.0),
                p(&mut sldn, 99.0),
                p(&mut sldn, 100.0),
                out.drops,
                out.end_time as f64 / 1e6,
            );
        }
    }
    println!("\nEvery flow completed in every configuration (losses are");
    println!("recovered by go-back-N; PFC prevents them outright).");
}
