//! Quickstart: train a small m3 model on synthetic path scenarios, then
//! estimate the tail latency of a full fat-tree workload and compare with
//! packet-level ground truth.
//!
//! Run with: `cargo run --release --example quickstart`
//! (a few minutes on a laptop; scale down via the constants below)

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::workload::prelude::*;

fn main() {
    // 1. Get a correction model: reuse the `train` binary's checkpoint if
    //    present, otherwise train a deliberately tiny one on Table 2-style
    //    parking-lot scenarios right here.
    let net = if let Ok(net) = m3::nn::checkpoint::load_file("assets/m3-model.ckpt") {
        println!("loaded assets/m3-model.ckpt ({} params)", net.num_params());
        net
    } else {
        println!("training a small m3 model (synthetic parking-lot scenarios)...");
        let train_cfg = TrainConfig {
            n_scenarios: 60,
            fg_flows: 150,
            bg_flows: 450,
            epochs: 25,
            ..TrainConfig::default()
        };
        let dataset = build_dataset(&train_cfg);
        let (net, report) = train(&train_cfg, &dataset);
        println!(
            "  {} params, final train L1 {:.3}, val L1 {:.3}",
            net.num_params(),
            report.train_loss.last().unwrap(),
            report.val_loss.last().unwrap()
        );
        net
    };

    // 2. Build the evaluation scenario: 32-rack fat tree, WebServer sizes,
    //    broad traffic matrix, 50% max link load.
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let workload = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 30_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 7,
        },
    );
    let config = SimConfig::default(); // DCTCP

    // 3. m3 estimate: decompose into paths, flowSim + ML per path, aggregate.
    let t = std::time::Instant::now();
    let estimator = M3Estimator::new(net);
    let estimate = estimator.estimate(&ft.topo, &workload.flows, &config, 100, 1);
    let m3_time = t.elapsed();

    // 4. Ground truth: full packet-level simulation.
    let t = std::time::Instant::now();
    let gt_out = run_simulation(&ft.topo, config, workload.flows.clone());
    let gt = ground_truth_estimate(&gt_out.records);
    let gt_time = t.elapsed();

    println!("\nnetwork-wide p99 FCT slowdown");
    println!("  ground truth: {:.2}  ({:.1?})", gt.p99(), gt_time);
    println!(
        "  m3:           {:.2}  ({:.1?}, {:.1}x faster, {:+.1}% error)",
        estimate.p99(),
        m3_time,
        gt_time.as_secs_f64() / m3_time.as_secs_f64(),
        relative_error(estimate.p99(), gt.p99()) * 100.0
    );
    let names = ["(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"];
    println!("\nper-size-bucket p99 slowdown (truth vs m3)");
    for (b, name) in names.iter().enumerate() {
        println!(
            "  {:12} {:>7.2} {:>7.2}",
            name,
            gt.bucket_p99(b),
            estimate.bucket_p99(b)
        );
    }
}
