//! Counterfactual design exploration (§5.4): use a trained m3 model to
//! sweep a congestion-control parameter *without* re-running packet-level
//! simulation for every candidate — the use case that makes m3 practical
//! for live network tuning.
//!
//! This example sweeps DCTCP's marking threshold K and the initial window,
//! and prints the predicted p99 slowdown per flow class. Uses the trained
//! checkpoint from the `train` binary when present (assets/m3-model.ckpt),
//! otherwise trains a small model first.
//!
//! Run with: `cargo run --release --example counterfactual`

use m3::core::prelude::*;
use m3::netsim::prelude::*;
use m3::workload::prelude::*;

fn load_model() -> m3::nn::prelude::M3Net {
    if let Ok(net) = m3::nn::checkpoint::load_file("assets/m3-model.ckpt") {
        println!("loaded assets/m3-model.ckpt ({} params)", net.num_params());
        return net;
    }
    println!("no checkpoint found; training a small model...");
    let cfg = TrainConfig {
        n_scenarios: 60,
        epochs: 20,
        ..TrainConfig::default()
    };
    let dataset = build_dataset(&cfg);
    train(&cfg, &dataset).0
}

fn main() {
    let net = load_model();
    let estimator = M3Estimator::new(net);

    // One workload, many configurations: the flowSim features are recomputed
    // per config (they depend on topology only through rates), and the
    // network-spec vector carries the counterfactual knobs to the model.
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let workload = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 20_000,
            matrix_name: "C".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 11,
        },
    );

    println!("\nsweep 1: DCTCP marking threshold K (init window 15KB)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "K", "(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,..)"
    );
    for k_kb in [5u64, 8, 12, 16, 20] {
        let config = SimConfig {
            params: CcParams {
                dctcp_k: k_kb * KB,
                ..CcParams::default()
            },
            ..SimConfig::default()
        };
        let t = std::time::Instant::now();
        let est = estimator.estimate(&ft.topo, &workload.flows, &config, 60, 3);
        print!("{:>7}K", k_kb);
        for b in 0..NUM_OUTPUT_BUCKETS {
            print!(" {:>11.2}", est.bucket_p99(b));
        }
        println!("   ({:.1?})", t.elapsed());
    }

    println!("\nsweep 2: initial congestion window (DCTCP, K = 12KB)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "window", "(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,..)"
    );
    for w_kb in [5u64, 10, 15, 20, 30] {
        let config = SimConfig {
            init_window: w_kb * KB,
            ..SimConfig::default()
        };
        let est = estimator.estimate(&ft.topo, &workload.flows, &config, 60, 3);
        print!("{:>7}K", w_kb);
        for b in 0..NUM_OUTPUT_BUCKETS {
            print!(" {:>11.2}", est.bucket_p99(b));
        }
        println!();
    }
    println!("\nEach point explores a full network configuration in seconds;");
    println!("the equivalent packet-level sweep would take hours (Fig. 13).");
}
